//! Query-graph management (Section 3.3).
//!
//! Unlike the bounded-data eXACML system, where every request re-consults the
//! PDP, a stream consumer keeps using the handle it was given long after the
//! decision was made. If the owner later removes or modifies the policy, the
//! consumer must lose access immediately: "whenever a policy has been removed
//! or modified by the user, all query graphs that are spawned by the policy
//! are immediately withdrawn from back-end data stream engines."
//!
//! [`QueryGraphManager`] is that bookkeeping: every deployment is recorded
//! against the policy that authorised it (plus the requesting subject and the
//! stream), so policy-change events can name exactly the deployments to
//! withdraw.

use exacml_dsms::{DeploymentId, QueryGraph, StreamHandle};
use std::collections::HashMap;

/// One tracked deployment.
#[derive(Debug, Clone)]
pub struct TrackedGraph {
    /// The deployment the DSMS assigned.
    pub deployment: DeploymentId,
    /// The handle handed to the client.
    pub handle: StreamHandle,
    /// The policy that authorised the deployment.
    pub policy_id: String,
    /// The subject the deployment serves.
    pub subject: String,
    /// The source stream.
    pub stream: String,
    /// The merged query graph that was deployed.
    pub graph: QueryGraph,
}

/// Bookkeeping of live deployments, indexed by policy.
#[derive(Debug, Default)]
pub struct QueryGraphManager {
    by_deployment: HashMap<DeploymentId, TrackedGraph>,
}

impl QueryGraphManager {
    /// An empty manager.
    #[must_use]
    pub fn new() -> Self {
        QueryGraphManager::default()
    }

    /// Record a deployment.
    pub fn track(&mut self, entry: TrackedGraph) {
        self.by_deployment.insert(entry.deployment, entry);
    }

    /// Forget a single deployment (e.g. the client released it).
    pub fn untrack(&mut self, deployment: DeploymentId) -> Option<TrackedGraph> {
        self.by_deployment.remove(&deployment)
    }

    /// All deployments spawned by one policy.
    #[must_use]
    pub fn deployments_of_policy(&self, policy_id: &str) -> Vec<DeploymentId> {
        let mut ids: Vec<DeploymentId> = self
            .by_deployment
            .values()
            .filter(|t| t.policy_id == policy_id)
            .map(|t| t.deployment)
            .collect();
        ids.sort();
        ids
    }

    /// Remove every deployment spawned by one policy from the bookkeeping,
    /// returning the removed entries (the caller withdraws them from the
    /// engine and releases the access-guard slots).
    pub fn evict_policy(&mut self, policy_id: &str) -> Vec<TrackedGraph> {
        let ids = self.deployments_of_policy(policy_id);
        ids.iter().filter_map(|id| self.by_deployment.remove(id)).collect()
    }

    /// The entry behind a handle, if tracked.
    #[must_use]
    pub fn find_by_handle(&self, handle: &StreamHandle) -> Option<&TrackedGraph> {
        self.by_deployment.values().find(|t| &t.handle == handle)
    }

    /// Number of live tracked deployments.
    #[must_use]
    pub fn live_count(&self) -> usize {
        self.by_deployment.len()
    }

    /// Number of live deployments per policy (sorted by policy id), useful
    /// for observability and tests.
    #[must_use]
    pub fn per_policy_counts(&self) -> Vec<(String, usize)> {
        let mut counts: HashMap<String, usize> = HashMap::new();
        for t in self.by_deployment.values() {
            *counts.entry(t.policy_id.clone()).or_default() += 1;
        }
        let mut out: Vec<(String, usize)> = counts.into_iter().collect();
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(dep: u64, policy: &str, subject: &str) -> TrackedGraph {
        TrackedGraph {
            deployment: DeploymentId(dep),
            handle: StreamHandle::mint("dsms", dep),
            policy_id: policy.to_string(),
            subject: subject.to_string(),
            stream: "weather".to_string(),
            graph: QueryGraph::identity("weather"),
        }
    }

    #[test]
    fn tracking_and_lookup() {
        let mut mgr = QueryGraphManager::new();
        mgr.track(entry(1, "p1", "LTA"));
        mgr.track(entry(2, "p1", "EMA"));
        mgr.track(entry(3, "p2", "LTA"));
        assert_eq!(mgr.live_count(), 3);
        assert_eq!(mgr.deployments_of_policy("p1"), vec![DeploymentId(1), DeploymentId(2)]);
        assert_eq!(mgr.deployments_of_policy("p3"), vec![]);
        let handle = StreamHandle::mint("dsms", 3);
        assert_eq!(mgr.find_by_handle(&handle).unwrap().policy_id, "p2");
        assert_eq!(mgr.per_policy_counts(), vec![("p1".to_string(), 2), ("p2".to_string(), 1)]);
    }

    #[test]
    fn evicting_a_policy_removes_only_its_graphs() {
        let mut mgr = QueryGraphManager::new();
        mgr.track(entry(1, "p1", "LTA"));
        mgr.track(entry(2, "p1", "EMA"));
        mgr.track(entry(3, "p2", "LTA"));
        let evicted = mgr.evict_policy("p1");
        assert_eq!(evicted.len(), 2);
        assert_eq!(mgr.live_count(), 1);
        assert!(mgr.deployments_of_policy("p1").is_empty());
        assert_eq!(mgr.deployments_of_policy("p2"), vec![DeploymentId(3)]);
    }

    #[test]
    fn untrack_single_deployment() {
        let mut mgr = QueryGraphManager::new();
        mgr.track(entry(1, "p1", "LTA"));
        assert!(mgr.untrack(DeploymentId(1)).is_some());
        assert!(mgr.untrack(DeploymentId(1)).is_none());
        assert_eq!(mgr.live_count(), 0);
    }
}
