//! The proxy with a stream-handle cache.
//!
//! The eXACML+ architecture (Figure 3a) puts a proxy between the clients and
//! the data server. Unlike the archived-data eXACML system, what the proxy
//! caches is not data but **stream handles**, "whose sizes are significantly
//! smaller", so the improvement is less dramatic — but under a heavy-tailed
//! (Zipf) request distribution the paper still measures a substantial gain
//! (Figure 6b). [`Proxy::request`] answers repeated identical requests from
//! its cache without touching the PDP at all.

use crate::error::ExacmlError;
use crate::metrics::RequestTiming;
use crate::server::{AccessResponse, DataServer};
use crate::user_query::UserQuery;
use exacml_simnet::NodeId;
use exacml_xacml::Request;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Proxy counters (cache effectiveness).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProxyStats {
    /// Requests the proxy handled.
    pub requests: u64,
    /// Requests answered from the handle cache.
    pub hits: u64,
    /// Requests forwarded to the data server.
    pub misses: u64,
}

impl ProxyStats {
    /// Cache hit rate in [0, 1].
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.hits as f64 / self.requests as f64
        }
    }
}

/// The proxy entity.
pub struct Proxy {
    server: Arc<DataServer>,
    cache_enabled: bool,
    cache: Mutex<HashMap<String, AccessResponse>>,
    rng: Mutex<StdRng>,
    stats: Mutex<ProxyStats>,
}

impl Proxy {
    /// A proxy in front of a data server, with the handle cache enabled.
    #[must_use]
    pub fn new(server: Arc<DataServer>) -> Self {
        Proxy::with_cache(server, true)
    }

    /// A proxy with the cache explicitly enabled or disabled (the Figure 6b
    /// comparison).
    #[must_use]
    pub fn with_cache(server: Arc<DataServer>, cache_enabled: bool) -> Self {
        let seed = server.config().seed.wrapping_add(1);
        Proxy {
            server,
            cache_enabled,
            cache: Mutex::new(HashMap::new()),
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            stats: Mutex::new(ProxyStats::default()),
        }
    }

    /// The data server behind the proxy.
    #[must_use]
    pub fn server(&self) -> &Arc<DataServer> {
        &self.server
    }

    /// Whether the handle cache is enabled.
    #[must_use]
    pub fn cache_enabled(&self) -> bool {
        self.cache_enabled
    }

    /// Cache-effectiveness counters.
    #[must_use]
    pub fn stats(&self) -> ProxyStats {
        *self.stats.lock()
    }

    /// Drop every cached handle.
    pub fn clear_cache(&self) {
        self.cache.lock().clear();
    }

    /// Number of cached entries.
    #[must_use]
    pub fn cached_entries(&self) -> usize {
        self.cache.lock().len()
    }

    fn cache_key(request: &Request, user_query: Option<&UserQuery>) -> String {
        let subject = request.subject_id().unwrap_or("<none>").to_ascii_lowercase();
        let stream = request.resource_id().unwrap_or("<none>").to_ascii_lowercase();
        let action = request.action_id().unwrap_or("subscribe").to_ascii_lowercase();
        let query = user_query.map_or_else(|| "<identity>".to_string(), UserQuery::fingerprint);
        format!("{subject}|{stream}|{action}|{query}")
    }

    /// Handle one request at the proxy: answer from the cache when possible,
    /// otherwise forward to the data server (charging the proxy↔server
    /// network hop) and cache the resulting handle.
    ///
    /// # Errors
    /// Propagates every server-side error on a cache miss.
    pub fn request(
        &self,
        request: &Request,
        user_query: Option<&UserQuery>,
    ) -> Result<AccessResponse, ExacmlError> {
        let started = Instant::now();
        self.stats.lock().requests += 1;
        let key = Self::cache_key(request, user_query);

        if self.cache_enabled {
            let cached = self.cache.lock().get(&key).cloned();
            if let Some(mut response) = cached {
                // A cached handle may have been withdrawn by a policy change;
                // verify liveness before serving it.
                if self.server.handle_is_live(&response.handle) {
                    self.stats.lock().hits += 1;
                    response.reused = true;
                    response.timing = RequestTiming {
                        pdp: Duration::ZERO,
                        query_graph: Duration::ZERO,
                        dsms: Duration::ZERO,
                        network: Duration::ZERO,
                        total: started.elapsed(),
                    };
                    return Ok(response);
                }
                self.cache.lock().remove(&key);
            }
        }

        self.stats.lock().misses += 1;
        // Charge the proxy → data-server hop: the request document plus the
        // user query go out, the handle comes back.
        let request_bytes = exacml_xacml::xml::write_request(request).len()
            + user_query.map_or(0, |q| q.to_xml().len());
        let network = {
            let mut rng = self.rng.lock();
            self.server.topology().round_trip(
                NodeId::Proxy,
                NodeId::DataServer,
                request_bytes,
                128,
                &mut *rng,
            )
        };
        let mut response = self.server.handle_request(request, user_query)?;
        response.timing.network += network;
        response.timing.total = started.elapsed() + response.timing.network;

        if self.cache_enabled {
            self.cache.lock().insert(key, response.clone());
        }
        Ok(response)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obligations::StreamPolicyBuilder;
    use crate::server::ServerConfig;
    use exacml_dsms::Schema;

    fn proxy_setup(cache: bool) -> Proxy {
        let server = Arc::new(DataServer::new(ServerConfig::local()));
        server.register_stream("weather", Schema::weather_example()).unwrap();
        for subject in ["LTA", "EMA", "PUB"] {
            let policy = StreamPolicyBuilder::new(format!("weather-{subject}"), "weather")
                .subject(subject)
                .filter("rainrate > 5")
                .build();
            server.load_policy(policy).unwrap();
        }
        Proxy::with_cache(server, cache)
    }

    #[test]
    fn cache_hit_avoids_the_server_round_trip() {
        let proxy = proxy_setup(true);
        let request = Request::subscribe("LTA", "weather");
        let first = proxy.request(&request, None).unwrap();
        assert!(!first.reused);
        let second = proxy.request(&request, None).unwrap();
        assert!(second.reused);
        assert_eq!(first.handle, second.handle);
        let stats = proxy.stats();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
        // Cache hits skip the PDP entirely.
        assert_eq!(second.timing.pdp, Duration::ZERO);
        assert_eq!(proxy.cached_entries(), 1);
    }

    #[test]
    fn cache_disabled_always_forwards() {
        let proxy = proxy_setup(false);
        let request = Request::subscribe("LTA", "weather");
        proxy.request(&request, None).unwrap();
        let second = proxy.request(&request, None).unwrap();
        // The server still answers (idempotent re-request), but it was not a
        // proxy cache hit.
        assert_eq!(proxy.stats().hits, 0);
        assert_eq!(proxy.stats().misses, 2);
        assert!(second.reused); // served by the server's access guard
        assert_eq!(proxy.cached_entries(), 0);
    }

    #[test]
    fn different_subjects_get_different_cache_entries() {
        let proxy = proxy_setup(true);
        proxy.request(&Request::subscribe("LTA", "weather"), None).unwrap();
        proxy.request(&Request::subscribe("EMA", "weather"), None).unwrap();
        assert_eq!(proxy.cached_entries(), 2);
        assert_eq!(proxy.stats().hits, 0);
    }

    #[test]
    fn stale_cache_entries_are_refreshed_after_policy_removal() {
        let proxy = proxy_setup(true);
        let request = Request::subscribe("LTA", "weather");
        let first = proxy.request(&request, None).unwrap();
        // The owner removes and re-creates the policy; the cached handle dies.
        proxy.server().remove_policy("weather-LTA").unwrap();
        let policy = StreamPolicyBuilder::new("weather-LTA", "weather")
            .subject("LTA")
            .filter("rainrate > 50")
            .build();
        proxy.server().load_policy(policy).unwrap();

        let second = proxy.request(&request, None).unwrap();
        assert_ne!(first.handle, second.handle);
        assert!(!second.reused);
        assert!(second.streamsql.contains("rainrate > 50"));
        // The stale entry counted as a miss, not a hit.
        assert_eq!(proxy.stats().hits, 0);
    }

    #[test]
    fn denied_requests_are_not_cached() {
        let proxy = proxy_setup(true);
        let request = Request::subscribe("UNKNOWN", "weather");
        assert!(proxy.request(&request, None).is_err());
        assert_eq!(proxy.cached_entries(), 0);
    }

    #[test]
    fn clear_cache_forces_forwarding() {
        let proxy = proxy_setup(true);
        let request = Request::subscribe("LTA", "weather");
        proxy.request(&request, None).unwrap();
        proxy.clear_cache();
        proxy.request(&request, None).unwrap();
        assert_eq!(proxy.stats().hits, 0);
        assert_eq!(proxy.stats().misses, 2);
    }
}
