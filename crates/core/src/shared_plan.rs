//! The shared-plan cache: one compiled operator subgraph per distinct query
//! shape, refcounted across overlapping grants.
//!
//! Section 3.1 motivates merging policy and user graphs per request; this
//! module extends the idea *across* requests. When thousands of consumers
//! subscribe to overlapping views of one stream, the server deploys each
//! distinct **core graph** once and attaches a cheap per-grant handle
//! (optionally with a residual predicate + projection mask — see
//! [`exacml_dsms::ResidualSpec`]) for every subscriber. The cache here is the
//! bookkeeping: a canonical-signature → deployment map with a refcount per
//! entry, so teardown (explicit release, policy removal/update) withdraws
//! the deployment exactly when its last grant ends.
//!
//! The key is [`QueryGraph::canonical_signature`] of the *deployed core*
//! graph. The policy id is deliberately **not** part of the key: the
//! signature alone determines what the deployment computes and delivers, so
//! two policies that compile to the same core soundly share one plan (this
//! is also what makes replay of a journal stable across policy renames).
//!
//! [`QueryGraph::canonical_signature`]: exacml_dsms::QueryGraph::canonical_signature

use exacml_dsms::DeploymentId;
use std::collections::HashMap;
use std::fmt;

/// Identity of one shared plan. Stable for the lifetime of the plan (from
/// first deployment to the release of its last grant); carried in
/// [`crate::AccessResponse`] so callers can observe sharing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PlanId(pub u64);

impl fmt::Display for PlanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "plan-{}", self.0)
    }
}

/// One cached plan: the deployment executing the core graph, and how many
/// grants currently ride on it.
#[derive(Debug)]
struct PlanEntry {
    key: String,
    deployment: DeploymentId,
    refcount: usize,
}

/// Refcounted map from canonical core-graph signatures to live deployments.
#[derive(Debug, Default)]
pub struct PlanCache {
    next: u64,
    by_key: HashMap<String, PlanId>,
    by_id: HashMap<PlanId, PlanEntry>,
}

impl PlanCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        PlanCache::default()
    }

    /// Take one more reference on the plan cached under `key`, if any.
    pub fn acquire(&mut self, key: &str) -> Option<(PlanId, DeploymentId)> {
        let id = *self.by_key.get(key)?;
        let entry = self.by_id.get_mut(&id).expect("by_key and by_id agree");
        entry.refcount += 1;
        Some((id, entry.deployment))
    }

    /// Cache a freshly deployed plan under `key` with refcount 1.
    pub fn insert(&mut self, key: impl Into<String>, deployment: DeploymentId) -> PlanId {
        let id = PlanId(self.next);
        self.next += 1;
        let key = key.into();
        self.by_key.insert(key.clone(), id);
        self.by_id.insert(id, PlanEntry { key, deployment, refcount: 1 });
        id
    }

    /// Drop one reference. Returns the backing deployment and whether this
    /// was the **last** reference (in which case the entry is evicted and the
    /// caller must withdraw the deployment). `None` for unknown plans —
    /// benign under racing release paths.
    pub fn release(&mut self, id: PlanId) -> Option<(DeploymentId, bool)> {
        let entry = self.by_id.get_mut(&id)?;
        entry.refcount -= 1;
        if entry.refcount > 0 {
            return Some((entry.deployment, false));
        }
        let entry = self.by_id.remove(&id).expect("entry just borrowed");
        self.by_key.remove(&entry.key);
        Some((entry.deployment, true))
    }

    /// Current refcount of a plan (0 for unknown ids).
    #[must_use]
    pub fn refcount(&self, id: PlanId) -> usize {
        self.by_id.get(&id).map_or(0, |e| e.refcount)
    }

    /// Number of live plans.
    #[must_use]
    pub fn plan_count(&self) -> usize {
        self.by_id.len()
    }

    /// Total grants across all plans (observability).
    #[must_use]
    pub fn grant_count(&self) -> usize {
        self.by_id.values().map(|e| e.refcount).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_insert_release_lifecycle() {
        let mut cache = PlanCache::new();
        assert_eq!(cache.acquire("weather -> Filter(r > 5)"), None);
        let plan = cache.insert("weather -> Filter(r > 5)", DeploymentId(3));
        assert_eq!(cache.refcount(plan), 1);
        assert_eq!(cache.plan_count(), 1);

        let (again, deployment) = cache.acquire("weather -> Filter(r > 5)").unwrap();
        assert_eq!(again, plan);
        assert_eq!(deployment, DeploymentId(3));
        assert_eq!(cache.refcount(plan), 2);
        assert_eq!(cache.grant_count(), 2);

        assert_eq!(cache.release(plan), Some((DeploymentId(3), false)));
        assert_eq!(cache.release(plan), Some((DeploymentId(3), true)));
        assert_eq!(cache.plan_count(), 0);
        // Releasing a dead plan is a no-op, and the key is free again.
        assert_eq!(cache.release(plan), None);
        assert_eq!(cache.acquire("weather -> Filter(r > 5)"), None);
    }

    #[test]
    fn distinct_keys_get_distinct_plans() {
        let mut cache = PlanCache::new();
        let a = cache.insert("sig-a", DeploymentId(0));
        let b = cache.insert("sig-b", DeploymentId(1));
        assert_ne!(a, b);
        assert_eq!(cache.acquire("sig-a").unwrap().0, a);
        assert_eq!(cache.plan_count(), 2);
        // Plan ids are never reused, even after eviction.
        cache.release(a);
        cache.release(a);
        let c = cache.insert("sig-a", DeploymentId(2));
        assert_ne!(c, a);
        assert_eq!(cache.acquire("sig-a").unwrap(), (c, DeploymentId(2)));
    }
}
