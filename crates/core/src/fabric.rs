//! The distributed brokering fabric (PR 3).
//!
//! The paper deploys eXACML+ on a coordinator/broker/server testbed; this
//! module is the first scale-out step beyond the single in-process
//! [`DataServer`]: N server nodes — each hosting its **own** PDP, policy
//! store and stream engine — run behind a routing [`Fabric`] broker over
//! `exacml-simnet` links with a virtual clock.
//!
//! * **Stream placement** is consistent: every stream is owned by exactly
//!   one node, chosen by rendezvous (highest-random-weight) hashing, so the
//!   mapping is stable, independent of registration order, and moves only
//!   `~1/(N+1)` of the streams when a node is added to a fresh fabric.
//! * **Request routing**: an access request is routed to the node owning the
//!   target stream, charging the broker → node hop on top of the node's own
//!   Section 3.2 workflow cost.
//! * **Policy propagation**: add / remove / update at the broker fans out to
//!   *every* node. Each node's store revision counter advances, so each
//!   node-local PDP decision cache is invalidated fabric-wide — the
//!   Section 3.3 coupling between policy-change events and withdrawn state
//!   holds on every shard.
//! * **Subscriber delivery** fans back through a per-subscription
//!   [`SimLink`]: derived tuples are stamped with a simulated arrival time
//!   (propagation + jitter + serialisation for the tuple's wire size) and
//!   are only handed to the consumer once the fabric's virtual clock passes
//!   it, FIFO per link — end-to-end latency therefore includes the network,
//!   as two thirds of the paper's measured latency did.

use crate::backend::{BackendResponse, StreamBatch, TaggedAuditEvent};
use crate::error::ExacmlError;
use crate::metrics::RobustnessStats;
use crate::router::ShardedMap;
use crate::server::{DataServer, ServerConfig};
use crate::user_query::UserQuery;
use exacml_dsms::{Schema, StreamHandle, Tuple};
use exacml_simnet::{Clock, FaultPlan, LinkSpec, ManualClock, NodeId, SimLink, Topology};
use exacml_telemetry::{Metric, Stage, Telemetry, TelemetrySnapshot};
use exacml_xacml::{Policy, Request};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How the broker treats an unreachable node before giving up with
/// [`ExacmlError::NodeUnavailable`]: up to `max_attempts` tries, the gap
/// between consecutive tries doubling from `backoff` — all in *virtual*
/// time, so a transient fault window (a dropped link that heals) degrades
/// to a retried hop rather than an error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try included) before the hop fails.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles on each further retry.
    pub backoff: Duration,
}

impl RetryPolicy {
    /// No retries at all: the first unreachable probe is final.
    #[must_use]
    pub fn none() -> Self {
        RetryPolicy { max_attempts: 1, backoff: Duration::ZERO }
    }

    /// The virtual time consumed when every attempt fails.
    #[must_use]
    pub fn worst_case_delay(&self) -> Duration {
        (0..self.max_attempts.saturating_sub(1)).map(|i| self.backoff * 2u32.pow(i)).sum()
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_attempts: 4, backoff: Duration::from_millis(2) }
    }
}

/// Configuration of the brokering fabric.
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// Number of data-server nodes behind the broker (at least 1).
    pub nodes: usize,
    /// Topology the broker and nodes communicate over. Per-node links
    /// default to the topology's default link unless overridden for
    /// `NodeId::Server(i)`.
    pub topology: Topology,
    /// Base seed; each node and link derives its own deterministic seed.
    pub seed: u64,
    /// Per-node server configuration template (`topology`, `seed` and
    /// `dsms_host` are overridden per node).
    pub server_template: ServerConfig,
    /// Injected-fault schedule consulted (against the fabric's virtual
    /// clock) before every broker→node hop. `None` means a fault-free
    /// network.
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// Retry/backoff policy for broker→node hops that hit an active fault.
    pub retry: RetryPolicy,
}

impl FabricConfig {
    /// A fabric of `nodes` nodes on the given topology.
    #[must_use]
    pub fn new(nodes: usize, topology: Topology) -> Self {
        FabricConfig {
            nodes: nodes.max(1),
            topology,
            seed: 42,
            server_template: ServerConfig::default(),
            fault_plan: None,
            retry: RetryPolicy::default(),
        }
    }

    /// A fabric on the paper's coordinator/broker/server testbed links.
    #[must_use]
    pub fn paper_testbed(nodes: usize) -> Self {
        FabricConfig::new(nodes, Topology::paper_testbed())
    }

    /// A fabric where the client-facing hop crosses a WAN (the paper's
    /// "migrate to a commercial cloud" what-if).
    #[must_use]
    pub fn public_cloud(nodes: usize) -> Self {
        FabricConfig::new(nodes, Topology::public_cloud())
    }

    /// A fabric with loopback links everywhere (unit tests).
    #[must_use]
    pub fn local(nodes: usize) -> Self {
        FabricConfig::new(nodes, Topology::local())
    }

    /// Override the base seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Override the per-node server template.
    #[must_use]
    pub fn with_server_template(mut self, template: ServerConfig) -> Self {
        self.server_template = template;
        self
    }

    /// Install an injected-fault schedule (consulted before every
    /// broker→node hop against the fabric's virtual clock).
    #[must_use]
    pub fn with_fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Override the broker→node retry/backoff policy.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }
}

/// The broker→node ingest side of one node: a [`SimLink`] carrying whole
/// [`StreamBatch`] frames plus the node's single-threaded apply loop. The
/// surrounding `Mutex` **is** the apply loop — a real node applies its
/// ingest RPCs in arrival order, one at a time, while other nodes' pipelines
/// drain concurrently.
struct IngestPipeline {
    link: SimLink<StreamBatch>,
}

/// One data-server node of the fabric.
pub struct FabricNode {
    id: NodeId,
    server: Arc<DataServer>,
    alive: AtomicBool,
    /// Samples this node's broker ↔ node request/response delays. Per-node,
    /// so routing to different nodes never serialises on a shared RNG.
    rng: Mutex<StdRng>,
    /// The node's ingest queue (broker→node link + FIFO apply loop).
    ingest: Mutex<IngestPipeline>,
    requests_routed: AtomicU64,
    tuples_routed: AtomicU64,
    ingest_hops: AtomicU64,
    ingest_network_nanos: AtomicU64,
}

impl FabricNode {
    /// The node's identity in the topology.
    #[must_use]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The node's data server (own PDP, policy store and engine).
    #[must_use]
    pub fn server(&self) -> &Arc<DataServer> {
        &self.server
    }

    /// Access requests the broker routed to this node.
    #[must_use]
    pub fn requests_routed(&self) -> u64 {
        self.requests_routed.load(Ordering::Relaxed)
    }

    /// Source tuples the broker routed to this node.
    #[must_use]
    pub fn tuples_routed(&self) -> u64 {
        self.tuples_routed.load(Ordering::Relaxed)
    }

    /// Broker→node ingest frames shipped to this node — one per routed
    /// `(node, batch-call)` group, however many tuples the frame carried.
    /// `tuples_routed / ingest_hops` is therefore the amortisation factor
    /// batched routing achieves over per-tuple shipping.
    #[must_use]
    pub fn ingest_hops(&self) -> u64 {
        self.ingest_hops.load(Ordering::Relaxed)
    }

    /// Simulated network time the node's ingest frames spent on the wire.
    #[must_use]
    pub fn ingest_network(&self) -> Duration {
        Duration::from_nanos(self.ingest_network_nanos.load(Ordering::Relaxed))
    }

    /// The virtual instant this node's ingest pipe goes idle (the
    /// serialising-queue frontier of its broker→node link, propagation
    /// excluded). `frontier − start` across an ingest run is the node's
    /// simulated busy time; the max over nodes is the fabric's ingest
    /// makespan — the quantity a real N-node deployment's throughput is
    /// bounded by, and what the scaling bench divides tuple counts by.
    #[must_use]
    pub fn ingest_frontier_nanos(&self) -> u64 {
        self.ingest.lock().link.service_frontier_nanos()
    }

    /// Ship a group of stream batches to this node as **one frame** on its
    /// ingest link (a single sampled propagation delay for the group,
    /// serialisation per batch, the frame queueing behind the pipe's
    /// in-progress service), then apply the node's queue in arrival (FIFO)
    /// order under the pipeline lock — the node's single-threaded apply
    /// loop. Returns the number of derived tuples the node's engine
    /// emitted.
    ///
    /// On error (unknown stream, malformed tuple) the remaining batches of
    /// the frame are **not** applied and the queue is left empty — a frame
    /// either lands whole or fails typed partway with nothing lingering.
    fn apply_ingest_frame(
        &self,
        now_nanos: u64,
        batches: Vec<StreamBatch>,
    ) -> Result<usize, ExacmlError> {
        let mut pipeline = self.ingest.lock();
        let items: Vec<(usize, StreamBatch)> =
            batches.into_iter().map(|batch| (batch.wire_bytes(), batch)).collect();
        pipeline.link.send_batch_queued(now_nanos, items);
        let queued = pipeline.link.drain_ready(u64::MAX);
        let mut emitted = 0;
        let mut last_arrival = now_nanos;
        for (arrival, batch) in queued {
            let count = batch.tuples.len() as u64;
            emitted += self.server.push_batch(&batch.stream, batch.tuples)?;
            self.tuples_routed.fetch_add(count, Ordering::Relaxed);
            last_arrival = last_arrival.max(arrival);
        }
        self.ingest_hops.fetch_add(1, Ordering::Relaxed);
        let frame_nanos = last_arrival.saturating_sub(now_nanos);
        self.ingest_network_nanos.fetch_add(frame_nanos, Ordering::Relaxed);
        // Frame time is *virtual* (sampled propagation + serialisation), so
        // it is recorded as a duration, never measured with a wall clock —
        // the node's snapshot stays deterministic per seed.
        let telemetry = self.server.telemetry_registry();
        telemetry.record_nanos(Stage::BrokerRoute, frame_nanos);
        telemetry.incr(Metric::BrokerFrames);
        Ok(emitted)
    }

    /// Whether the broker currently considers this node alive. Dead nodes
    /// reject every routed operation with
    /// [`ExacmlError::NodeUnavailable`] until
    /// [`Fabric::restart_node`] brings them back.
    #[must_use]
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Relaxed)
    }
}

/// The answer for an access request routed through the fabric — since the
/// unified backend API (PR 4) this is the [`BackendResponse`] every backend
/// returns; the alias remains for code written against the PR 3 surface.
pub type FabricResponse = BackendResponse;

/// A derived tuple delivered through a simulated link.
#[derive(Debug, Clone)]
pub struct DeliveredTuple {
    /// The derived tuple.
    pub tuple: Tuple,
    /// Virtual time at which the node handed the tuple to the link.
    pub sent_at_nanos: u64,
    /// Virtual time at which the tuple arrived at the subscriber.
    pub arrived_at_nanos: u64,
}

impl DeliveredTuple {
    /// The simulated network latency this tuple experienced.
    #[must_use]
    pub fn latency(&self) -> Duration {
        Duration::from_nanos(self.arrived_at_nanos - self.sent_at_nanos)
    }

    /// A tuple that never crossed a simulated link (in-process delivery):
    /// sent and arrived at the same instant, zero latency. Lets the unified
    /// [`crate::backend::Subscription::drain_settled`] report uniform
    /// delivery records whatever the backend shape.
    #[must_use]
    pub fn in_process(tuple: Tuple) -> Self {
        DeliveredTuple { tuple, sent_at_nanos: 0, arrived_at_nanos: 0 }
    }
}

/// A subscription whose deliveries travel the node → subscriber link of the
/// simulated topology. Owned by the consumer; poll it after advancing the
/// fabric's virtual clock.
pub struct FabricSubscription {
    node: NodeId,
    rx: crossbeam::channel::Receiver<Tuple>,
    link: SimLink<(u64, Tuple)>,
    clock: ManualClock,
    delivered: u64,
    /// When attached, per-tuple virtual delivery latency is recorded here
    /// under [`Stage::Delivery`].
    telemetry: Option<Arc<Telemetry>>,
}

impl FabricSubscription {
    /// Assemble a subscription from its transport parts: the node-local
    /// delivery channel, the node → subscriber [`SimLink`] and the shared
    /// virtual clock. Used by brokers living outside this crate (the
    /// replicated durable fabric) so their subscribers get the same
    /// latency-ordered, FIFO-per-link delivery semantics.
    #[must_use]
    pub fn attach(
        node: NodeId,
        rx: crossbeam::channel::Receiver<Tuple>,
        link: SimLink<(u64, Tuple)>,
        clock: ManualClock,
    ) -> Self {
        FabricSubscription { node, rx, link, clock, delivered: 0, telemetry: None }
    }

    /// Record each delivered tuple's virtual latency into `telemetry` under
    /// [`Stage::Delivery`] (brokers pass their registry so fan-back latency
    /// shows up in the fabric snapshot).
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Arc<Telemetry>) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// The node the subscribed stream lives on.
    #[must_use]
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Pull newly derived tuples from the node into the link (stamping each
    /// with its simulated arrival time), then deliver everything that has
    /// arrived by the fabric's current virtual time, in arrival order.
    ///
    /// Tuples whose arrival time is still in the future stay in flight;
    /// advance the fabric clock and poll again to receive them.
    pub fn poll(&mut self) -> Vec<DeliveredTuple> {
        let now = self.clock.now_nanos();
        // Everything derived since the last poll leaves the node as one
        // frame: a single sampled propagation delay for the group, each
        // tuple paying its own serialisation on top (batched fan-back,
        // mirroring the broker→node ingest frames).
        let pending: Vec<(usize, (u64, Tuple))> =
            self.rx.try_iter().map(|tuple| (tuple.approx_size_bytes(), (now, tuple))).collect();
        if !pending.is_empty() {
            self.link.send_batch(now, pending);
        }
        let ready = self.link.drain_ready(now);
        self.delivered += ready.len() as u64;
        let delivered: Vec<DeliveredTuple> = ready
            .into_iter()
            .map(|(arrived_at_nanos, (sent_at_nanos, tuple))| DeliveredTuple {
                tuple,
                sent_at_nanos,
                arrived_at_nanos,
            })
            .collect();
        if let Some(telemetry) = &self.telemetry {
            for d in &delivered {
                telemetry.record_nanos(
                    Stage::Delivery,
                    d.arrived_at_nanos.saturating_sub(d.sent_at_nanos),
                );
            }
        }
        delivered
    }

    /// Drain **everything** derived so far: pull the node-local channel into
    /// the link, then advance the shared virtual clock in small steps until
    /// no delivery remains in flight. This is what
    /// [`crate::backend::Subscription::drain`] uses so scenario code written
    /// against the unified backend API never has to drive the clock itself.
    ///
    /// Advancing the clock moves virtual time for the whole fabric (all
    /// subscriptions share it), exactly as waiting on a real network would.
    pub fn drain_settled(&mut self) -> Vec<DeliveredTuple> {
        let mut delivered = self.poll();
        while self.in_flight() > 0 {
            self.clock.advance(Duration::from_millis(1));
            delivered.extend(self.poll());
        }
        delivered
    }

    /// Tuples queued on the link, not yet past their arrival time. (Tuples
    /// still in the node-local channel are not counted until the next
    /// [`FabricSubscription::poll`].)
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.link.in_flight()
    }

    /// Total tuples delivered to this subscriber so far.
    #[must_use]
    pub fn delivered(&self) -> u64 {
        self.delivered
    }
}

/// Fabric-wide counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct FabricStats {
    /// Nodes behind the broker.
    pub nodes: usize,
    /// Streams placed across the fabric.
    pub streams_placed: u64,
    /// Access requests routed to owner nodes.
    pub requests_routed: u64,
    /// Source tuples routed to owner nodes.
    pub tuples_routed: u64,
    /// Broker→node ingest frames shipped (one per routed `(node, batch)`
    /// group). `tuples_routed / ingest_hops` is the batching amortisation
    /// factor — per-tuple shipping would make the two counters equal.
    pub ingest_hops: u64,
    /// Per-node policy-store operations fanned out by the broker
    /// (`nodes × (adds + removes + updates)`).
    pub policy_propagations: u64,
}

/// The routing broker plus its server nodes.
///
/// The broker itself sits at [`NodeId::DataServer`] of the topology (it is
/// the entity clients and the proxy reach); the shards sit at
/// [`NodeId::Server`]`(i)`.
pub struct Fabric {
    config: FabricConfig,
    nodes: Vec<FabricNode>,
    clock: ManualClock,
    /// Stream → owning node index, recorded at registration and consulted
    /// first by every routing decision; unregistered streams fall back to
    /// the rendezvous hash (which registration also used). Sharded so
    /// concurrent lookups for different streams touch different locks.
    placements: ShardedMap<String, usize>,
    /// Granted handle → owning node index (populated on grant, consulted by
    /// subscribe/release). Sharded like the placement table.
    handles: ShardedMap<StreamHandle, usize>,
    /// Seeds handed to per-subscription links, derived deterministically.
    next_link_seed: AtomicU64,
    streams_placed: AtomicU64,
    policy_propagations: AtomicU64,
    broker_retries: AtomicU64,
    /// Broker-level registry: request round-trips ([`Stage::BrokerRoute`]),
    /// frame counts, and subscription delivery latency. Per-node stages live
    /// in each node server's own registry; [`Fabric::telemetry`] aggregates.
    telemetry: Arc<Telemetry>,
}

impl Fabric {
    /// Build a fabric: one `DataServer` per node, each with its own policy
    /// store, PDP, engine (minting handles under a distinct host) and a
    /// node-specific seed.
    #[must_use]
    pub fn new(config: FabricConfig) -> Self {
        // Derived seeds mix in the node count, so two fabrics sharing a base
        // seed but differing in shape sample *different* delay sequences —
        // identical-looking delivery stats across scale-out scenarios were
        // a measurement artifact of sharing the seed stream.
        let shape_salt = (config.nodes as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let nodes = (0..config.nodes)
            .map(|i| {
                let node_id = NodeId::Server(i as u16);
                let node_config = ServerConfig {
                    topology: config.topology.clone(),
                    seed: config.seed.wrapping_add(1 + i as u64),
                    dsms_host: format!("node{i}"),
                    ..config.server_template.clone()
                };
                let ingest_spec: LinkSpec = config.topology.link(NodeId::DataServer, node_id);
                FabricNode {
                    id: node_id,
                    server: Arc::new(DataServer::new(node_config)),
                    alive: AtomicBool::new(true),
                    rng: Mutex::new(StdRng::seed_from_u64(
                        config.seed.wrapping_mul(0x9e37_79b9).wrapping_add(shape_salt) ^ i as u64,
                    )),
                    ingest: Mutex::new(IngestPipeline {
                        link: SimLink::new(
                            ingest_spec,
                            config.seed.wrapping_add(shape_salt).wrapping_add(0xbeef + i as u64),
                        ),
                    }),
                    requests_routed: AtomicU64::new(0),
                    tuples_routed: AtomicU64::new(0),
                    ingest_hops: AtomicU64::new(0),
                    ingest_network_nanos: AtomicU64::new(0),
                }
            })
            .collect();
        Fabric {
            clock: ManualClock::new(),
            nodes,
            placements: ShardedMap::new(),
            handles: ShardedMap::new(),
            next_link_seed: AtomicU64::new(
                config.seed.wrapping_add(0xf00d).wrapping_add(shape_salt),
            ),
            streams_placed: AtomicU64::new(0),
            policy_propagations: AtomicU64::new(0),
            broker_retries: AtomicU64::new(0),
            telemetry: Arc::new(Telemetry::new()),
            config,
        }
    }

    /// The fabric's configuration.
    #[must_use]
    pub fn config(&self) -> &FabricConfig {
        &self.config
    }

    /// The nodes behind the broker.
    #[must_use]
    pub fn nodes(&self) -> &[FabricNode] {
        &self.nodes
    }

    /// The fabric's virtual clock (shared with subscriptions).
    #[must_use]
    pub fn clock(&self) -> &ManualClock {
        &self.clock
    }

    /// Advance the virtual clock, making in-flight deliveries whose arrival
    /// time has passed available to [`FabricSubscription::poll`].
    pub fn advance(&self, by: Duration) {
        self.clock.advance(by);
    }

    /// Fabric-wide counters.
    #[must_use]
    pub fn stats(&self) -> FabricStats {
        FabricStats {
            nodes: self.nodes.len(),
            streams_placed: self.streams_placed.load(Ordering::Relaxed),
            requests_routed: self.nodes.iter().map(FabricNode::requests_routed).sum(),
            tuples_routed: self.nodes.iter().map(FabricNode::tuples_routed).sum(),
            ingest_hops: self.nodes.iter().map(FabricNode::ingest_hops).sum(),
            policy_propagations: self.policy_propagations.load(Ordering::Relaxed),
        }
    }

    // --- placement ---------------------------------------------------------

    /// The node that owns a stream, by rendezvous hashing: the owner is the
    /// node whose `hash(stream, node)` weight is highest. Deterministic,
    /// uniform, and independent of registration order.
    #[must_use]
    pub fn owner_of(&self, stream: &str) -> NodeId {
        self.nodes[self.owner_index(stream)].id
    }

    fn owner_index(&self, stream: &str) -> usize {
        let canonical = stream.to_ascii_lowercase();
        // The placement recorded at registration is authoritative; the
        // rendezvous hash (identical at registration time) covers streams
        // that were never registered, so owner prediction still works.
        if let Some(index) = self.placements.get(&canonical) {
            return index;
        }
        rendezvous_owner(&canonical, self.nodes.len())
    }

    fn node_for_stream(&self, stream: &str) -> &FabricNode {
        &self.nodes[self.owner_index(stream)]
    }

    fn node_for_handle(&self, handle: &StreamHandle) -> Result<&FabricNode, ExacmlError> {
        let index = self
            .handles
            .get(handle)
            .ok_or_else(|| ExacmlError::UnknownHandle(handle.uri().to_string()))?;
        Ok(&self.nodes[index])
    }

    /// Sample the simulated broker → node → broker round trip on the node's
    /// own RNG (routing to different nodes never serialises on a shared
    /// RNG). Active latency spikes from the fault plan multiply the sample.
    fn broker_round_trip(
        &self,
        node: &FabricNode,
        request_bytes: usize,
        reply_bytes: usize,
    ) -> Duration {
        let mut rng = node.rng.lock();
        let sampled = self.config.topology.round_trip(
            NodeId::DataServer,
            node.id,
            request_bytes,
            reply_bytes,
            &mut *rng,
        );
        match &self.config.fault_plan {
            Some(plan) => {
                let factor =
                    plan.latency_factor(NodeId::DataServer, node.id, self.clock.now_nanos());
                sampled.mul_f64(factor.max(0.0))
            }
            None => sampled,
        }
    }

    // --- liveness + fault handling ------------------------------------------

    /// Declare a node dead. Every subsequent broker→node operation targeting
    /// it fails with [`ExacmlError::NodeUnavailable`] instead of silently
    /// touching state the rest of the system believes unreachable. The
    /// node's in-memory state survives (the plain fabric has no journal to
    /// rebuild it from); [`Fabric::restart_node`] makes the node answer
    /// again — state-replaying failover is the replicated durable fabric's
    /// job.
    pub fn kill_node(&self, index: usize) {
        if let Some(node) = self.nodes.get(index) {
            node.alive.store(false, Ordering::Relaxed);
        }
    }

    /// Bring a dead node back.
    pub fn restart_node(&self, index: usize) {
        if let Some(node) = self.nodes.get(index) {
            node.alive.store(true, Ordering::Relaxed);
        }
    }

    /// The nodes the broker currently cannot reach: declared dead, or
    /// covered by an active fault-plan window at the current virtual time.
    #[must_use]
    pub fn degraded_nodes(&self) -> Vec<NodeId> {
        let now = self.clock.now_nanos();
        self.nodes
            .iter()
            .filter(|node| {
                !node.is_alive()
                    || self
                        .config
                        .fault_plan
                        .as_ref()
                        .is_some_and(|plan| plan.link_down(NodeId::DataServer, node.id, now))
            })
            .map(|node| node.id)
            .collect()
    }

    /// Aggregated telemetry: the broker's own registry (request routing,
    /// frame counts, delivery latency — all virtual durations) merged with
    /// every node server's registry, each kept as a node-tagged sub-snapshot
    /// under `nodes`.
    #[must_use]
    pub fn telemetry(&self) -> TelemetrySnapshot {
        let mut parts = vec![self.telemetry.snapshot_tagged("broker")];
        parts.extend(
            self.nodes
                .iter()
                .map(|node| node.server.telemetry_registry().snapshot_tagged(&node.id.to_string())),
        );
        TelemetrySnapshot::aggregate(&format!("fabric-{}", self.nodes.len()), parts)
    }

    /// Fault-tolerance counters (broker retries; the plain fabric neither
    /// replicates nor fails over, so those counters stay zero here).
    #[must_use]
    pub fn robustness(&self) -> RobustnessStats {
        RobustnessStats {
            broker_retries: self.broker_retries.load(Ordering::Relaxed),
            ..RobustnessStats::default()
        }
    }

    /// Probe the broker→node hop before routing an operation: a dead node
    /// fails immediately; an active link fault is retried with exponential
    /// backoff *in virtual time* (so a transient window the retry outlives
    /// degrades to a slower hop, not an error) up to the configured attempt
    /// budget.
    fn ensure_reachable(&self, index: usize) -> Result<(), ExacmlError> {
        let node = &self.nodes[index];
        if !node.is_alive() {
            return Err(ExacmlError::NodeUnavailable {
                node: node.id.to_string(),
                detail: "node is declared dead".into(),
            });
        }
        let Some(plan) = &self.config.fault_plan else { return Ok(()) };
        let retry = self.config.retry;
        let mut attempt: u32 = 0;
        loop {
            if !plan.link_down(NodeId::DataServer, node.id, self.clock.now_nanos()) {
                if attempt > 0 {
                    self.broker_retries.fetch_add(u64::from(attempt), Ordering::Relaxed);
                }
                return Ok(());
            }
            attempt += 1;
            if attempt >= retry.max_attempts.max(1) {
                self.broker_retries.fetch_add(u64::from(attempt - 1), Ordering::Relaxed);
                return Err(ExacmlError::NodeUnavailable {
                    node: node.id.to_string(),
                    detail: format!(
                        "broker hop still faulted after {attempt} attempt(s) over {:?}",
                        retry.worst_case_delay()
                    ),
                });
            }
            self.clock.advance(retry.backoff * 2u32.pow(attempt - 1));
        }
    }

    /// Probe every node before a fabric-wide operation (policy
    /// propagation), so a fan-out either reaches all nodes or fails typed
    /// before mutating any of them.
    fn ensure_all_reachable(&self) -> Result<(), ExacmlError> {
        for index in 0..self.nodes.len() {
            self.ensure_reachable(index)?;
        }
        Ok(())
    }

    // --- stream + data plane ----------------------------------------------

    /// Register an input stream on its owning node.
    ///
    /// # Errors
    /// Fails when the name is taken on the owner, the schema invalid, or
    /// the owner node unreachable ([`ExacmlError::NodeUnavailable`]).
    pub fn register_stream(&self, name: &str, schema: Schema) -> Result<NodeId, ExacmlError> {
        let index = self.owner_index(name);
        self.ensure_reachable(index)?;
        self.nodes[index].server.register_stream(name, schema)?;
        self.placements.insert(name.to_ascii_lowercase(), index);
        self.streams_placed.fetch_add(1, Ordering::Relaxed);
        Ok(self.nodes[index].id)
    }

    /// Push one source tuple to the stream's owner node. A lone tuple is a
    /// one-message frame — it pays the full per-hop latency sample that
    /// [`Fabric::push_batches`] amortises over a whole group.
    ///
    /// # Errors
    /// Fails when the stream is unknown on its owner, the tuple malformed,
    /// or the owner node unreachable ([`ExacmlError::NodeUnavailable`]) —
    /// ingest to a dead node is a typed error, never a silent drop.
    pub fn push(&self, stream: &str, tuple: Tuple) -> Result<usize, ExacmlError> {
        self.push_batches(vec![StreamBatch::new(stream, vec![tuple])])
    }

    /// Push a batch of source tuples to the stream's owner node as one
    /// broker→node frame.
    ///
    /// # Errors
    /// Fails when the stream is unknown on its owner, any tuple malformed,
    /// or the owner node unreachable ([`ExacmlError::NodeUnavailable`]).
    pub fn push_batch(
        &self,
        stream: &str,
        tuples: impl IntoIterator<Item = Tuple>,
    ) -> Result<usize, ExacmlError> {
        self.push_batches(vec![StreamBatch::new(stream, tuples.into_iter().collect())])
    }

    /// Route a multi-stream ingest call: group the batches by their
    /// rendezvous-hashed owner and ship **one broker→node frame per
    /// `(node, call)` group** instead of one hop per tuple. Each targeted
    /// node samples a single propagation delay for its frame, applies the
    /// group FIFO under its own ingest lock, and different nodes' pipelines
    /// drain concurrently — this is the batched routing that makes fabric
    /// ingest scale monotonically with the node count.
    ///
    /// Every targeted owner is probed *before* anything is applied, so a
    /// multi-node call either starts landing or fails typed with no node
    /// touched. Returns the total number of derived tuples emitted by the
    /// nodes' engines.
    ///
    /// # Errors
    /// Fails when any targeted owner is unreachable
    /// ([`ExacmlError::NodeUnavailable`]), a stream is unknown on its
    /// owner, or a tuple is malformed. When a batch inside a frame fails,
    /// that node's earlier batches in the frame have already been applied
    /// (exactly as separate `push_batch` calls would have), and the error
    /// propagates.
    pub fn push_batches(&self, batches: Vec<StreamBatch>) -> Result<usize, ExacmlError> {
        let mut per_node: HashMap<usize, Vec<StreamBatch>> = HashMap::new();
        for batch in batches {
            if batch.tuples.is_empty() {
                continue;
            }
            per_node.entry(self.owner_index(&batch.stream)).or_default().push(batch);
        }
        let mut owners: Vec<usize> = per_node.keys().copied().collect();
        owners.sort_unstable();
        for &index in &owners {
            self.ensure_reachable(index)?;
        }
        let now = self.clock.now_nanos();
        let mut emitted = 0;
        for &index in &owners {
            let group = per_node.remove(&index).expect("grouped above");
            emitted += self.nodes[index].apply_ingest_frame(now, group)?;
        }
        Ok(emitted)
    }

    // --- control plane -----------------------------------------------------

    /// Route an access request to the node owning the target stream and run
    /// the Section 3.2 workflow there, charging the broker → node hop.
    ///
    /// # Errors
    /// Propagates the owner node's workflow errors
    /// ([`ExacmlError::AccessDenied`], [`ExacmlError::MultipleAccess`], …).
    pub fn handle_request(
        &self,
        request: &Request,
        user_query: Option<&UserQuery>,
    ) -> Result<FabricResponse, ExacmlError> {
        let stream = request
            .resource_id()
            .ok_or_else(|| ExacmlError::IncompleteRequest("missing resource-id".into()))?;
        let index = self.owner_index(stream);
        self.ensure_reachable(index)?;
        let node = &self.nodes[index];
        let request_bytes = exacml_xacml::xml::write_request(request).len()
            + user_query.map_or(0, |q| q.to_xml().len());
        let broker_network = self.broker_round_trip(node, request_bytes, 128);
        self.telemetry.record(Stage::BrokerRoute, broker_network);
        self.telemetry.incr(Metric::BrokerFrames);
        node.requests_routed.fetch_add(1, Ordering::Relaxed);
        let response = node.server.handle_request(request, user_query)?;
        self.handles.insert(response.handle.clone(), index);
        Ok(FabricResponse { node: node.id, response, broker_network })
    }

    /// Release the access a subject holds on a stream at its owner node.
    /// Returns `true` when something was released (unknown pairs and double
    /// releases are no-ops, exactly as on a single server). An unreachable
    /// owner also answers `false` — the trait signature carries no error
    /// channel, and "nothing was released" is the truthful report; the
    /// grant stays held until the node returns.
    pub fn release_access(&self, subject: &str, stream: &str) -> bool {
        if self.ensure_reachable(self.owner_index(stream)).is_err() {
            return false;
        }
        let released = self.node_for_stream(stream).server.release_access(subject, stream);
        if released {
            self.prune_dead_handles();
        }
        released
    }

    /// Drop routing entries whose deployment is gone, so grant/release and
    /// policy churn do not grow the handle map without bound.
    fn prune_dead_handles(&self) {
        self.handles.retain(|handle, index| self.nodes[*index].server.handle_is_live(handle));
    }

    /// Whether a granted handle still points at a live deployment on its
    /// node. Unknown handles are simply not live, and neither is anything
    /// on a node declared dead (its deployments are unreachable).
    #[must_use]
    pub fn handle_is_live(&self, handle: &StreamHandle) -> bool {
        self.node_for_handle(handle)
            .is_ok_and(|node| node.is_alive() && node.server.handle_is_live(handle))
    }

    /// Subscribe to a granted handle. Deliveries travel the node → broker
    /// link of the topology: poll the subscription after advancing the
    /// fabric's virtual clock.
    ///
    /// # Errors
    /// Fails when the handle was not granted through this fabric, the
    /// deployment behind it is gone, or the owning node is unreachable
    /// ([`ExacmlError::NodeUnavailable`]).
    pub fn subscribe(&self, handle: &StreamHandle) -> Result<FabricSubscription, ExacmlError> {
        let node = self.node_for_handle(handle)?;
        let NodeId::Server(index) = node.id else {
            return Err(ExacmlError::UnknownHandle(handle.uri().to_string()));
        };
        self.ensure_reachable(index as usize)?;
        let rx = match node.server.subscribe(handle) {
            Ok(rx) => rx,
            Err(error) => {
                // The deployment is gone (released or withdrawn by a policy
                // change): evict the routing entry and report the handle as
                // unknown, exactly as for a handle never granted here.
                if matches!(error, ExacmlError::Dsms(exacml_dsms::DsmsError::UnknownHandle(_))) {
                    self.handles.remove(handle);
                    return Err(ExacmlError::UnknownHandle(handle.uri().to_string()));
                }
                return Err(error);
            }
        };
        let link_spec: LinkSpec = self.config.topology.link(node.id, NodeId::DataServer);
        let seed = self.next_link_seed.fetch_add(1, Ordering::Relaxed);
        Ok(FabricSubscription {
            node: node.id,
            rx,
            link: SimLink::new(link_spec, seed),
            clock: self.clock.clone(),
            delivered: 0,
            telemetry: Some(Arc::clone(&self.telemetry)),
        })
    }

    // --- policy plane (fabric-wide propagation) ----------------------------

    /// Load a policy on **every** node. Each node's store revision advances,
    /// invalidating its PDP decision cache. Returns the slowest node's load
    /// time (the broker waits for full propagation).
    ///
    /// # Errors
    /// Fails if any node rejects the policy; earlier nodes keep it (the
    /// caller can retry — ids make the operation idempotent per node).
    /// Fails with [`ExacmlError::NodeUnavailable`] — before touching *any*
    /// node — when a node is unreachable, so propagation is never silently
    /// partial.
    pub fn load_policy(&self, policy: Policy) -> Result<Duration, ExacmlError> {
        self.ensure_all_reachable()?;
        let mut slowest = Duration::ZERO;
        for node in &self.nodes {
            let elapsed = node.server.load_policy(policy.clone())?;
            slowest = slowest.max(elapsed);
        }
        self.policy_propagations.fetch_add(self.nodes.len() as u64, Ordering::Relaxed);
        Ok(slowest)
    }

    /// Remove a policy on **every** node; query graphs it spawned are
    /// withdrawn wherever they live. Returns the total number of withdrawn
    /// deployments across the fabric.
    ///
    /// # Errors
    /// Fails when the policy is unknown (on the first node — propagation is
    /// all-or-nothing for a policy that was loaded through the broker), or
    /// with [`ExacmlError::NodeUnavailable`] before touching any node when
    /// one is unreachable.
    pub fn remove_policy(&self, policy_id: &str) -> Result<usize, ExacmlError> {
        self.ensure_all_reachable()?;
        let mut withdrawn = 0;
        for node in &self.nodes {
            withdrawn += node.server.remove_policy(policy_id)?;
        }
        self.policy_propagations.fetch_add(self.nodes.len() as u64, Ordering::Relaxed);
        if withdrawn > 0 {
            self.prune_dead_handles();
        }
        Ok(withdrawn)
    }

    /// Replace a policy on **every** node; as with removal, existing query
    /// graphs spawned by the old version are withdrawn fabric-wide. Returns
    /// the total number of withdrawn deployments.
    ///
    /// # Errors
    /// Fails when the policy is unknown, the new version invalid, or —
    /// before touching any node — a node is unreachable
    /// ([`ExacmlError::NodeUnavailable`]).
    pub fn update_policy(&self, policy: Policy) -> Result<usize, ExacmlError> {
        self.ensure_all_reachable()?;
        let mut withdrawn = 0;
        for node in &self.nodes {
            withdrawn += node.server.update_policy(policy.clone())?;
        }
        self.policy_propagations.fetch_add(self.nodes.len() as u64, Ordering::Relaxed);
        if withdrawn > 0 {
            self.prune_dead_handles();
        }
        Ok(withdrawn)
    }

    /// Load a policy from its XACML XML document on **every** node.
    ///
    /// # Errors
    /// Fails when the document does not parse or the policy is invalid.
    pub fn load_policy_xml(&self, xml: &str) -> Result<Duration, ExacmlError> {
        let policy = exacml_xacml::xml::parse_policy(xml)?;
        self.load_policy(policy)
    }

    /// Number of loaded policies per node (propagation keeps every node's
    /// store identical, so any node answers for the fabric).
    #[must_use]
    pub fn policy_count(&self) -> usize {
        self.nodes[0].server.policy_count()
    }

    // --- audit plane (aggregated across nodes) ------------------------------

    /// Aggregate node-local audit events, tag each with its shard's
    /// [`NodeId`], and interleave by wall-clock timestamp (sequence numbers
    /// only order events *within* a node).
    fn tagged_audit_events(
        &self,
        fetch: impl Fn(&DataServer) -> Vec<crate::audit::AuditEvent>,
    ) -> Vec<TaggedAuditEvent> {
        let mut events: Vec<TaggedAuditEvent> = self
            .nodes
            .iter()
            .flat_map(|node| {
                fetch(&node.server)
                    .into_iter()
                    .map(move |event| TaggedAuditEvent { node: node.id, event })
            })
            .collect();
        events.sort_by_key(|t| (t.event.timestamp_ms, t.node, t.event.sequence));
        events
    }

    /// The fabric-wide audit trail: every node-local log, each event tagged
    /// with the [`NodeId`] of the shard that recorded it, interleaved by
    /// wall-clock timestamp.
    #[must_use]
    pub fn audit_events(&self) -> Vec<TaggedAuditEvent> {
        self.tagged_audit_events(DataServer::audit_events)
    }

    /// Fabric-wide audit events involving one subject.
    #[must_use]
    pub fn audit_events_for_subject(&self, subject: &str) -> Vec<TaggedAuditEvent> {
        self.tagged_audit_events(|server| server.audit_events_for_subject(subject))
    }

    /// Number of live deployments across all nodes.
    #[must_use]
    pub fn live_deployments(&self) -> usize {
        self.nodes.iter().map(|n| n.server.live_deployments()).sum()
    }

    /// Number of live shared plans across all nodes. Plan identity is the
    /// merged graph's canonical signature, so on each node every distinct
    /// plan executes once no matter how many grants ride on it; across nodes
    /// the same signature may appear once per node that owns a stream it
    /// applies to.
    #[must_use]
    pub fn live_plans(&self) -> usize {
        self.nodes.iter().map(|n| n.server.plan_count()).sum()
    }

    /// Number of handle → node routing entries currently tracked. Dead
    /// entries are pruned on release and on policy withdrawal, so this
    /// tracks the live-handle population rather than growing with churn.
    #[must_use]
    pub fn routed_handles(&self) -> usize {
        self.handles.len()
    }
}

/// The rendezvous-hash (highest-random-weight) owner of `stream` among
/// `nodes` nodes: the index whose FNV-1a weight over `(stream, index)` is
/// highest. Case-insensitive over the stream name, deterministic, and
/// shared with the replicated durable fabric so both brokers agree on
/// ownership for the same node count.
#[must_use]
pub fn rendezvous_owner(stream: &str, nodes: usize) -> usize {
    let canonical = stream.to_ascii_lowercase();
    (0..nodes.max(1))
        .max_by_key(|&i| rendezvous_weight(&canonical, i))
        .expect("at least one node participates")
}

/// FNV-1a over the stream name and node index — the per-node weight of
/// rendezvous hashing.
fn rendezvous_weight(stream: &str, node_index: usize) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = FNV_OFFSET;
    for byte in stream.bytes().chain(node_index.to_le_bytes()) {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obligations::StreamPolicyBuilder;
    use exacml_dsms::Value;

    fn weather_tuple(schema: &Arc<Schema>, i: i64, rain: f64) -> Tuple {
        Tuple::builder_shared(schema)
            .set("samplingtime", Value::Timestamp(i * 30_000))
            .set("rainrate", rain)
            .finish_with_defaults()
    }

    fn fabric_with_streams(nodes: usize, streams: usize) -> (Fabric, Vec<String>) {
        let fabric = Fabric::new(FabricConfig::local(nodes));
        let names: Vec<String> = (0..streams).map(|i| format!("stream{i}")).collect();
        for name in &names {
            fabric.register_stream(name, Schema::weather_example()).unwrap();
        }
        (fabric, names)
    }

    #[test]
    fn placement_is_deterministic_and_covers_all_nodes() {
        let (fabric, names) = fabric_with_streams(4, 64);
        let mut per_node = vec![0usize; 4];
        for name in &names {
            let owner = fabric.owner_of(name);
            assert_eq!(owner, fabric.owner_of(name), "placement must be stable");
            let NodeId::Server(i) = owner else { panic!("owner must be a server shard") };
            per_node[i as usize] += 1;
            // The stream exists exactly on its owner.
            for node in fabric.nodes() {
                let has = node.server.engine().stream_schema(name).is_ok();
                assert_eq!(has, node.id() == owner, "stream {name} misplaced on {}", node.id());
            }
        }
        assert!(per_node.iter().all(|&c| c > 0), "rendezvous spread: {per_node:?}");
        assert_eq!(fabric.stats().streams_placed, 64);
        // Case-insensitive, like the rest of the stack's stream handling.
        assert_eq!(fabric.owner_of("STREAM7"), fabric.owner_of("stream7"));
    }

    #[test]
    fn rendezvous_moves_few_streams_when_a_node_joins() {
        let names: Vec<String> = (0..200).map(|i| format!("s{i}")).collect();
        let small = Fabric::new(FabricConfig::local(4));
        let large = Fabric::new(FabricConfig::local(5));
        let moved = names
            .iter()
            .filter(|n| {
                small.owner_of(n) != large.owner_of(n)
                    && matches!(small.owner_of(n), NodeId::Server(_))
            })
            .count();
        // Expect ~1/5 of streams to move; allow generous slack.
        assert!(moved > 10 && moved < 90, "moved {moved}/200");
        // Every moved stream landed on the new node.
        for name in &names {
            if small.owner_of(name) != large.owner_of(name) {
                assert_eq!(large.owner_of(name), NodeId::Server(4));
            }
        }
    }

    #[test]
    fn requests_route_to_the_owner_and_grant_handles() {
        let (fabric, names) = fabric_with_streams(3, 9);
        for (i, name) in names.iter().enumerate() {
            let policy = StreamPolicyBuilder::new(format!("p{i}"), name)
                .subject(format!("user{i}"))
                .filter("rainrate > 5")
                .build();
            fabric.load_policy(policy).unwrap();
        }
        for (i, name) in names.iter().enumerate() {
            let response = fabric
                .handle_request(&Request::subscribe(&format!("user{i}"), name), None)
                .unwrap();
            assert_eq!(response.node, fabric.owner_of(name));
            assert!(fabric.handle_is_live(&response.response.handle));
            assert!(response.total_latency() >= response.broker_network);
        }
        let stats = fabric.stats();
        assert_eq!(stats.requests_routed, 9);
        // Requests landed where the streams live.
        for node in fabric.nodes() {
            let owned = names.iter().filter(|n| fabric.owner_of(n) == node.id()).count() as u64;
            assert_eq!(node.requests_routed(), owned);
        }
    }

    #[test]
    fn data_routes_to_the_owner_node() {
        let (fabric, names) = fabric_with_streams(3, 6);
        let schema = Schema::weather_example().shared();
        for name in &names {
            let batch: Vec<Tuple> = (0..10).map(|i| weather_tuple(&schema, i, 10.0)).collect();
            fabric.push_batch(name, batch).unwrap();
            fabric.push(name, weather_tuple(&schema, 10, 1.0)).unwrap();
        }
        assert_eq!(fabric.stats().tuples_routed, 6 * 11);
        let per_node_ingested: u64 =
            fabric.nodes().iter().map(|n| n.server.engine_stats().tuples_ingested).sum();
        assert_eq!(per_node_ingested, 6 * 11);
        for node in fabric.nodes() {
            assert_eq!(node.tuples_routed(), node.server.engine_stats().tuples_ingested);
        }
        assert!(fabric.push("unregistered", weather_tuple(&schema, 0, 1.0)).is_err());
    }

    #[test]
    fn policy_propagation_reaches_every_node_and_bumps_revisions() {
        let fabric = Fabric::new(FabricConfig::local(3));
        fabric.register_stream("weather", Schema::weather_example()).unwrap();
        let policy =
            StreamPolicyBuilder::new("p", "weather").subject("LTA").filter("rainrate > 5").build();
        let before: Vec<u64> =
            fabric.nodes().iter().map(|n| n.server.policy_store().revision()).collect();
        fabric.load_policy(policy).unwrap();
        for (node, revision) in fabric.nodes().iter().zip(&before) {
            assert_eq!(node.server.policy_count(), 1);
            assert!(node.server.policy_store().revision() > *revision);
        }
        assert_eq!(fabric.stats().policy_propagations, 3);

        let updated =
            StreamPolicyBuilder::new("p", "weather").subject("LTA").filter("rainrate > 50").build();
        fabric.update_policy(updated).unwrap();
        fabric.remove_policy("p").unwrap();
        for node in fabric.nodes() {
            assert_eq!(node.server.policy_count(), 0);
        }
        assert_eq!(fabric.stats().policy_propagations, 9);
        assert!(fabric.remove_policy("p").is_err());
    }

    #[test]
    fn subscription_delivers_through_the_virtual_clock() {
        let fabric = Fabric::new(FabricConfig::paper_testbed(2));
        fabric.register_stream("weather", Schema::weather_example()).unwrap();
        let policy =
            StreamPolicyBuilder::new("p", "weather").subject("LTA").filter("rainrate > 5").build();
        fabric.load_policy(policy).unwrap();
        let granted = fabric.handle_request(&Request::subscribe("LTA", "weather"), None).unwrap();
        let mut subscription = fabric.subscribe(&granted.response.handle).unwrap();
        assert_eq!(subscription.node(), fabric.owner_of("weather"));

        let schema = Schema::weather_example().shared();
        let batch: Vec<Tuple> = (0..20).map(|i| weather_tuple(&schema, i, 10.0)).collect();
        assert_eq!(fabric.push_batch("weather", batch).unwrap(), 20);

        // Nothing has arrived yet: the LAN link's latency is > 0 virtual time.
        assert!(subscription.poll().is_empty());
        assert_eq!(subscription.in_flight(), 20);

        // Advance far enough for every tuple to arrive.
        fabric.advance(Duration::from_secs(1));
        let delivered = subscription.poll();
        assert_eq!(delivered.len(), 20);
        assert_eq!(subscription.delivered(), 20);
        assert_eq!(subscription.in_flight(), 0);
        // Arrival order is the send order and timestamps are monotone.
        for pair in delivered.windows(2) {
            assert!(pair[1].arrived_at_nanos >= pair[0].arrived_at_nanos);
            assert!(
                pair[1].tuple.event_time().unwrap() > pair[0].tuple.event_time().unwrap(),
                "FIFO delivery must preserve send order"
            );
        }
        // Latency includes the LAN link's base propagation delay.
        for d in &delivered {
            assert!(d.latency() >= Duration::from_micros(200), "latency {:?}", d.latency());
        }
        // Exactly-once: nothing more arrives.
        fabric.advance(Duration::from_secs(1));
        assert!(subscription.poll().is_empty());
    }

    #[test]
    fn handle_routing_entries_do_not_grow_with_grant_release_churn() {
        let fabric = Fabric::new(FabricConfig::local(2));
        fabric.register_stream("weather", Schema::weather_example()).unwrap();
        let policy =
            StreamPolicyBuilder::new("p", "weather").subject("LTA").filter("rainrate > 5").build();
        fabric.load_policy(policy).unwrap();
        for _ in 0..10 {
            let granted =
                fabric.handle_request(&Request::subscribe("LTA", "weather"), None).unwrap();
            assert_eq!(fabric.routed_handles(), 1);
            assert!(fabric.release_access("LTA", "weather"));
            assert_eq!(fabric.routed_handles(), 0, "released handles must be pruned");
            let _ = granted;
        }
        // Policy withdrawal prunes too.
        let granted = fabric.handle_request(&Request::subscribe("LTA", "weather"), None).unwrap();
        assert_eq!(fabric.routed_handles(), 1);
        assert_eq!(fabric.remove_policy("p").unwrap(), 1);
        assert_eq!(fabric.routed_handles(), 0);
        assert!(!fabric.handle_is_live(&granted.response.handle));
    }

    #[test]
    fn unknown_handles_are_rejected_and_not_live() {
        let fabric = Fabric::new(FabricConfig::local(2));
        let foreign = StreamHandle::mint("elsewhere", 7);
        assert!(!fabric.handle_is_live(&foreign));
        assert!(matches!(fabric.subscribe(&foreign), Err(ExacmlError::UnknownHandle(_))));
        let incomplete = Request::new();
        assert!(matches!(
            fabric.handle_request(&incomplete, None),
            Err(ExacmlError::IncompleteRequest(_))
        ));
    }

    #[test]
    fn dead_nodes_answer_with_typed_errors_until_restarted() {
        let fabric = Fabric::new(FabricConfig::local(2));
        fabric.register_stream("weather", Schema::weather_example()).unwrap();
        let policy =
            StreamPolicyBuilder::new("p", "weather").subject("LTA").filter("rainrate > 5").build();
        fabric.load_policy(policy).unwrap();
        let granted = fabric.handle_request(&Request::subscribe("LTA", "weather"), None).unwrap();
        let NodeId::Server(owner) = fabric.owner_of("weather") else { panic!("server owner") };

        fabric.kill_node(owner as usize);
        assert_eq!(fabric.degraded_nodes(), vec![NodeId::Server(owner)]);
        let schema = Schema::weather_example().shared();
        // Every broker path reports the typed error instead of panicking or
        // silently dropping.
        assert!(matches!(
            fabric.push("weather", weather_tuple(&schema, 0, 9.0)),
            Err(ExacmlError::NodeUnavailable { .. })
        ));
        assert!(matches!(
            fabric.push_batch("weather", vec![weather_tuple(&schema, 0, 9.0)]),
            Err(ExacmlError::NodeUnavailable { .. })
        ));
        assert!(matches!(
            fabric.handle_request(&Request::subscribe("LTA", "weather"), None),
            Err(ExacmlError::NodeUnavailable { .. })
        ));
        assert!(matches!(
            fabric.subscribe(&granted.response.handle),
            Err(ExacmlError::NodeUnavailable { .. })
        ));
        // Policy fan-out refuses before mutating any node.
        let p2 =
            StreamPolicyBuilder::new("p2", "weather").subject("EMA").filter("rainrate > 1").build();
        assert!(matches!(fabric.load_policy(p2), Err(ExacmlError::NodeUnavailable { .. })));
        for node in fabric.nodes() {
            assert_eq!(node.server().policy_count(), 1, "partial propagation");
        }
        // Release has no error channel: nothing is released, grant survives.
        assert!(!fabric.release_access("LTA", "weather"));
        assert!(!fabric.handle_is_live(&granted.response.handle));

        fabric.restart_node(owner as usize);
        assert!(fabric.degraded_nodes().is_empty());
        assert!(fabric.handle_is_live(&granted.response.handle));
        assert!(fabric.release_access("LTA", "weather"));
    }

    #[test]
    fn transient_link_faults_degrade_to_retries() {
        use exacml_simnet::{Fault, FaultPlan};
        // The link to every server node drops during [0, 3ms); the default
        // retry policy backs off 2ms + 4ms, outliving the window.
        let plan = FaultPlan::new()
            .inject(
                Fault::NodeDown { node: NodeId::Server(0) },
                Duration::ZERO,
                Duration::from_millis(3),
            )
            .inject(
                Fault::NodeDown { node: NodeId::Server(1) },
                Duration::ZERO,
                Duration::from_millis(3),
            );
        let config = FabricConfig::local(2).with_fault_plan(Arc::new(plan));
        let fabric = Fabric::new(config);
        fabric.register_stream("weather", Schema::weather_example()).unwrap();
        assert!(fabric.robustness().broker_retries > 0);
        assert!(fabric.clock().now_nanos() >= 3_000_000, "retries consumed virtual time");

        // A permanent fault exhausts the budget and reports typed failure.
        let forever = FaultPlan::new()
            .inject_forever(Fault::NodeDown { node: NodeId::Server(0) }, Duration::ZERO)
            .inject_forever(Fault::NodeDown { node: NodeId::Server(1) }, Duration::ZERO);
        let fabric = Fabric::new(FabricConfig::local(2).with_fault_plan(Arc::new(forever)));
        assert!(matches!(
            fabric.register_stream("weather", Schema::weather_example()),
            Err(ExacmlError::NodeUnavailable { .. })
        ));
    }

    #[test]
    fn latency_spikes_inflate_the_broker_hop() {
        use exacml_simnet::{Fault, FaultPlan};
        let spike = FaultPlan::new().inject_forever(
            Fault::LatencySpike { a: NodeId::DataServer, b: NodeId::Server(0), factor: 50.0 },
            Duration::ZERO,
        );
        let slow = Fabric::new(
            FabricConfig::new(1, Topology::uniform(LinkSpec::constant(300.0, 100.0)))
                .with_fault_plan(Arc::new(spike)),
        );
        let fast =
            Fabric::new(FabricConfig::new(1, Topology::uniform(LinkSpec::constant(300.0, 100.0))));
        for fabric in [&slow, &fast] {
            fabric.register_stream("weather", Schema::weather_example()).unwrap();
            fabric
                .load_policy(
                    StreamPolicyBuilder::new("p", "weather")
                        .subject("LTA")
                        .filter("rainrate > 5")
                        .build(),
                )
                .unwrap();
        }
        let spiked = slow.handle_request(&Request::subscribe("LTA", "weather"), None).unwrap();
        let normal = fast.handle_request(&Request::subscribe("LTA", "weather"), None).unwrap();
        assert!(spiked.broker_network > normal.broker_network * 10);
    }

    #[test]
    fn rendezvous_owner_matches_fabric_placement() {
        let fabric = Fabric::new(FabricConfig::local(5));
        for name in ["weather", "gps", "STREAM7", "a-very-long-stream-name"] {
            let NodeId::Server(i) = fabric.owner_of(name) else { panic!("server owner") };
            assert_eq!(rendezvous_owner(name, 5), i as usize);
        }
    }

    #[test]
    fn fabric_telemetry_aggregates_node_tagged_snapshots() {
        let fabric = Fabric::new(FabricConfig::local(2));
        fabric.register_stream("weather", Schema::weather_example()).unwrap();
        let policy =
            StreamPolicyBuilder::new("p", "weather").subject("LTA").filter("rainrate > 5").build();
        fabric.load_policy(policy).unwrap();
        let granted = fabric.handle_request(&Request::subscribe("LTA", "weather"), None).unwrap();
        let mut subscription = fabric.subscribe(&granted.response.handle).unwrap();
        let schema = Schema::weather_example().shared();
        let batch: Vec<Tuple> = (0..8).map(|t| weather_tuple(&schema, t, 9.0)).collect();
        fabric.push_batch("weather", batch).unwrap();
        assert!(subscription.poll().is_empty(), "nothing arrives before the clock advances");
        fabric.advance(Duration::from_secs(1));
        let delivered = subscription.poll();
        assert!(!delivered.is_empty());

        let snapshot = fabric.telemetry();
        assert_eq!(snapshot.node, "fabric-2");
        let tags: Vec<&str> = snapshot.nodes.iter().map(|part| part.node.as_str()).collect();
        assert_eq!(tags, ["broker", "server-0", "server-1"]);

        // Top-level counters reconcile with the operations we performed: one
        // routed request, one ingest frame, eight tuples into the owner node.
        assert_eq!(snapshot.counter(Metric::Requests), 1);
        assert_eq!(snapshot.counter(Metric::TuplesIngested), 8);
        assert_eq!(snapshot.counter(Metric::BrokerFrames), 2, "request route + ingest frame");

        // Stage routing: broker round-trips and deliveries live in the
        // broker part; ingest frames are recorded on the owning node.
        let broker = &snapshot.nodes[0];
        assert_eq!(broker.stage(Stage::BrokerRoute).map(|s| s.count), Some(1));
        assert_eq!(broker.stage(Stage::Delivery).map(|s| s.count), Some(delivered.len() as u64));
        let node_ingest: u64 =
            snapshot.nodes[1..].iter().map(|part| part.counter(Metric::TuplesIngested)).sum();
        assert_eq!(node_ingest, 8);
        // The virtual clock, not the wall clock, times broker stages: the
        // same scenario replays to the same snapshot.
        let replay = Fabric::new(FabricConfig::local(2));
        replay.register_stream("weather", Schema::weather_example()).unwrap();
        let policy =
            StreamPolicyBuilder::new("p", "weather").subject("LTA").filter("rainrate > 5").build();
        replay.load_policy(policy).unwrap();
        replay.handle_request(&Request::subscribe("LTA", "weather"), None).unwrap();
        assert_eq!(
            replay.telemetry().nodes[0].stage(Stage::BrokerRoute).map(|s| s.total_nanos),
            broker.stage(Stage::BrokerRoute).map(|s| s.total_nanos),
        );
    }

    #[test]
    fn nodes_mint_globally_unique_handles() {
        let (fabric, names) = fabric_with_streams(4, 16);
        let mut seen = std::collections::HashSet::new();
        for (i, name) in names.iter().enumerate() {
            let policy = StreamPolicyBuilder::new(format!("p{i}"), name)
                .subject("LTA")
                .filter("rainrate > 5")
                .build();
            fabric.load_policy(policy).unwrap();
            let granted = fabric.handle_request(&Request::subscribe("LTA", name), None).unwrap();
            assert!(
                seen.insert(granted.response.handle.uri().to_string()),
                "duplicate handle URI across nodes"
            );
        }
    }
}
