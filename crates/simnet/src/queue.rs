//! Per-link delivery queues drained by the virtual clock.
//!
//! The brokering fabric ships messages (tuples, requests) between nodes over
//! [`LinkSpec`]s. Instead of sleeping for the sampled delay, a sender
//! enqueues the message with its computed **arrival time** into a
//! [`DeliveryQueue`]; the receiver drains everything whose arrival time has
//! passed whenever the virtual clock advances. This keeps experiments
//! instantaneous and deterministic while still producing end-to-end
//! latencies that include propagation, jitter and serialisation cost.
//!
//! [`SimLink`] bundles one directed link with its queue and RNG and enforces
//! the FIFO property of a real network link: a message never overtakes one
//! sent before it on the same link, so arrival timestamps on a link are
//! non-decreasing even when the sampled jitter would invert them.

use crate::link::LinkSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One queued message: ordered by arrival time, then by send sequence so
/// simultaneous arrivals drain in send order.
#[derive(Debug)]
struct Queued<T> {
    arrival_nanos: u64,
    sequence: u64,
    item: T,
}

impl<T> PartialEq for Queued<T> {
    fn eq(&self, other: &Self) -> bool {
        self.arrival_nanos == other.arrival_nanos && self.sequence == other.sequence
    }
}
impl<T> Eq for Queued<T> {}
impl<T> PartialOrd for Queued<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Queued<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.arrival_nanos, self.sequence).cmp(&(other.arrival_nanos, other.sequence))
    }
}

/// A time-ordered in-flight message queue. Messages are enqueued with an
/// absolute arrival time and drained once the (virtual) clock reaches it.
#[derive(Debug)]
pub struct DeliveryQueue<T> {
    heap: BinaryHeap<Reverse<Queued<T>>>,
    next_sequence: u64,
}

impl<T> Default for DeliveryQueue<T> {
    fn default() -> Self {
        DeliveryQueue { heap: BinaryHeap::new(), next_sequence: 0 }
    }
}

impl<T> DeliveryQueue<T> {
    /// An empty queue.
    #[must_use]
    pub fn new() -> Self {
        DeliveryQueue::default()
    }

    /// Enqueue a message arriving at the given absolute time.
    pub fn enqueue(&mut self, arrival_nanos: u64, item: T) {
        let sequence = self.next_sequence;
        self.next_sequence += 1;
        self.heap.push(Reverse(Queued { arrival_nanos, sequence, item }));
    }

    /// Remove and return every message whose arrival time is `<= now_nanos`,
    /// in arrival order (ties broken by send order).
    pub fn drain_ready(&mut self, now_nanos: u64) -> Vec<(u64, T)> {
        let mut ready = Vec::new();
        while self.heap.peek().is_some_and(|Reverse(q)| q.arrival_nanos <= now_nanos) {
            let Reverse(q) = self.heap.pop().expect("peek saw an entry");
            ready.push((q.arrival_nanos, q.item));
        }
        ready
    }

    /// Arrival time of the earliest in-flight message, if any.
    #[must_use]
    pub fn next_arrival(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse(q)| q.arrival_nanos)
    }

    /// Number of in-flight messages.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no messages are in flight.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// One directed network link with its in-flight queue: sending samples the
/// link's delay model and enqueues the message at `now + delay`, clamped so
/// arrivals on the link are FIFO (non-decreasing arrival times).
#[derive(Debug)]
pub struct SimLink<T> {
    spec: LinkSpec,
    rng: StdRng,
    queue: DeliveryQueue<T>,
    last_arrival_nanos: u64,
}

impl<T> SimLink<T> {
    /// A link with a deterministic delay-sampling seed.
    #[must_use]
    pub fn new(spec: LinkSpec, seed: u64) -> Self {
        SimLink {
            spec,
            rng: StdRng::seed_from_u64(seed),
            queue: DeliveryQueue::new(),
            last_arrival_nanos: 0,
        }
    }

    /// The link's specification.
    #[must_use]
    pub fn spec(&self) -> LinkSpec {
        self.spec
    }

    /// Send a message of `bytes` bytes at (virtual) time `now_nanos`.
    /// Returns the arrival time assigned to it.
    pub fn send(&mut self, now_nanos: u64, bytes: usize, item: T) -> u64 {
        let delay = self.spec.sample_delay(bytes, &mut self.rng);
        let arrival = (now_nanos + delay.as_nanos() as u64).max(self.last_arrival_nanos);
        self.last_arrival_nanos = arrival;
        self.queue.enqueue(arrival, item);
        arrival
    }

    /// Deliver every message that has arrived by `now_nanos`, in arrival
    /// order.
    pub fn drain_ready(&mut self, now_nanos: u64) -> Vec<(u64, T)> {
        self.queue.drain_ready(now_nanos)
    }

    /// Arrival time of the earliest in-flight message, if any.
    #[must_use]
    pub fn next_arrival(&self) -> Option<u64> {
        self.queue.next_arrival()
    }

    /// Number of in-flight messages.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_drains_in_arrival_order() {
        let mut q = DeliveryQueue::new();
        q.enqueue(300, "c");
        q.enqueue(100, "a");
        q.enqueue(200, "b");
        assert_eq!(q.len(), 3);
        assert_eq!(q.next_arrival(), Some(100));
        assert_eq!(q.drain_ready(50), Vec::<(u64, &str)>::new());
        assert_eq!(q.drain_ready(200), vec![(100, "a"), (200, "b")]);
        assert_eq!(q.drain_ready(1_000), vec![(300, "c")]);
        assert!(q.is_empty());
    }

    #[test]
    fn simultaneous_arrivals_drain_in_send_order() {
        let mut q = DeliveryQueue::new();
        q.enqueue(100, 1);
        q.enqueue(100, 2);
        q.enqueue(100, 3);
        assert_eq!(q.drain_ready(100), vec![(100, 1), (100, 2), (100, 3)]);
    }

    #[test]
    fn link_messages_never_overtake_each_other() {
        // A jittery link: raw sampled delays can invert; arrivals must not.
        let mut link = SimLink::new(LinkSpec::lan_100mbps(), 7);
        let mut previous = 0;
        for i in 0..500 {
            let arrival = link.send(i * 10, 256, i);
            assert!(arrival >= previous, "message {i} overtook its predecessor");
            previous = arrival;
        }
        let delivered = link.drain_ready(u64::MAX);
        assert_eq!(delivered.len(), 500);
        let order: Vec<u64> = delivered.iter().map(|(_, i)| *i).collect();
        assert_eq!(order, (0..500).collect::<Vec<_>>());
    }

    #[test]
    fn link_arrival_includes_latency_and_serialisation() {
        let mut link = SimLink::new(LinkSpec::constant(500.0, 100.0), 1);
        // 500 µs latency + 1250 bytes * 8 bits / 100 Mbps = 100 µs.
        let arrival = link.send(0, 1_250, ());
        assert_eq!(arrival, 600_000);
        assert_eq!(link.in_flight(), 1);
        assert!(link.drain_ready(599_999).is_empty());
        assert_eq!(link.drain_ready(600_000).len(), 1);
    }

    #[test]
    fn link_sampling_is_deterministic_per_seed() {
        let run = |seed| {
            let mut link = SimLink::new(LinkSpec::lan_100mbps(), seed);
            (0..50).map(|i| link.send(i * 1_000, 128, ())).collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }
}
