//! Per-link delivery queues drained by the virtual clock.
//!
//! The brokering fabric ships messages (tuples, requests) between nodes over
//! [`LinkSpec`]s. Instead of sleeping for the sampled delay, a sender
//! enqueues the message with its computed **arrival time** into a
//! [`DeliveryQueue`]; the receiver drains everything whose arrival time has
//! passed whenever the virtual clock advances. This keeps experiments
//! instantaneous and deterministic while still producing end-to-end
//! latencies that include propagation, jitter and serialisation cost.
//!
//! [`SimLink`] bundles one directed link with its queue and RNG and enforces
//! the FIFO property of a real network link: a message never overtakes one
//! sent before it on the same link, so arrival timestamps on a link are
//! non-decreasing even when the sampled jitter would invert them.

use crate::link::LinkSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One queued message: ordered by arrival time, then by send sequence so
/// simultaneous arrivals drain in send order.
#[derive(Debug)]
struct Queued<T> {
    arrival_nanos: u64,
    sequence: u64,
    item: T,
}

impl<T> PartialEq for Queued<T> {
    fn eq(&self, other: &Self) -> bool {
        self.arrival_nanos == other.arrival_nanos && self.sequence == other.sequence
    }
}
impl<T> Eq for Queued<T> {}
impl<T> PartialOrd for Queued<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Queued<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.arrival_nanos, self.sequence).cmp(&(other.arrival_nanos, other.sequence))
    }
}

/// A time-ordered in-flight message queue. Messages are enqueued with an
/// absolute arrival time and drained once the (virtual) clock reaches it.
#[derive(Debug)]
pub struct DeliveryQueue<T> {
    heap: BinaryHeap<Reverse<Queued<T>>>,
    next_sequence: u64,
}

impl<T> Default for DeliveryQueue<T> {
    fn default() -> Self {
        DeliveryQueue { heap: BinaryHeap::new(), next_sequence: 0 }
    }
}

impl<T> DeliveryQueue<T> {
    /// An empty queue.
    #[must_use]
    pub fn new() -> Self {
        DeliveryQueue::default()
    }

    /// Enqueue a message arriving at the given absolute time.
    pub fn enqueue(&mut self, arrival_nanos: u64, item: T) {
        let sequence = self.next_sequence;
        self.next_sequence += 1;
        self.heap.push(Reverse(Queued { arrival_nanos, sequence, item }));
    }

    /// Remove and return every message whose arrival time is `<= now_nanos`,
    /// in arrival order (ties broken by send order).
    pub fn drain_ready(&mut self, now_nanos: u64) -> Vec<(u64, T)> {
        let mut ready = Vec::new();
        while self.heap.peek().is_some_and(|Reverse(q)| q.arrival_nanos <= now_nanos) {
            let Reverse(q) = self.heap.pop().expect("peek saw an entry");
            ready.push((q.arrival_nanos, q.item));
        }
        ready
    }

    /// Arrival time of the earliest in-flight message, if any.
    #[must_use]
    pub fn next_arrival(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse(q)| q.arrival_nanos)
    }

    /// Number of in-flight messages.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no messages are in flight.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// One directed network link with its in-flight queue: sending samples the
/// link's delay model and enqueues the message at `now + delay`, clamped so
/// arrivals on the link are FIFO (non-decreasing arrival times).
#[derive(Debug)]
pub struct SimLink<T> {
    spec: LinkSpec,
    rng: StdRng,
    queue: DeliveryQueue<T>,
    last_arrival_nanos: u64,
    service_frontier_nanos: u64,
}

impl<T> SimLink<T> {
    /// A link with a deterministic delay-sampling seed.
    #[must_use]
    pub fn new(spec: LinkSpec, seed: u64) -> Self {
        SimLink {
            spec,
            rng: StdRng::seed_from_u64(seed),
            queue: DeliveryQueue::new(),
            last_arrival_nanos: 0,
            service_frontier_nanos: 0,
        }
    }

    /// The link's specification.
    #[must_use]
    pub fn spec(&self) -> LinkSpec {
        self.spec
    }

    /// Send a message of `bytes` bytes at (virtual) time `now_nanos`.
    /// Returns the arrival time assigned to it.
    pub fn send(&mut self, now_nanos: u64, bytes: usize, item: T) -> u64 {
        let delay = self.spec.sample_delay(bytes, &mut self.rng);
        let arrival = (now_nanos + delay.as_nanos() as u64).max(self.last_arrival_nanos);
        self.last_arrival_nanos = arrival;
        self.queue.enqueue(arrival, item);
        arrival
    }

    /// Send a batch of messages as **one frame** at (virtual) time
    /// `now_nanos`. The whole frame pays a single sampled propagation delay;
    /// each message then pays its own serialisation cost *cumulatively* (the
    /// wire transmits the frame back-to-back), so arrivals stay distinct,
    /// strictly ordered within the frame, and FIFO with respect to earlier
    /// sends. Returns the arrival time of each message, in input order.
    ///
    /// This is what makes batched broker→node routing cheaper than per-tuple
    /// shipping: `n` tuples in one frame sample the latency model once
    /// instead of `n` times, exactly like one RPC carrying `n` records.
    pub fn send_batch(&mut self, now_nanos: u64, items: Vec<(usize, T)>) -> Vec<u64> {
        let frame_latency = self.spec.sample_latency(&mut self.rng);
        let mut offset = frame_latency;
        let mut arrivals = Vec::with_capacity(items.len());
        for (bytes, item) in items {
            offset += self.spec.serialisation_delay(bytes);
            let arrival = (now_nanos + offset.as_nanos() as u64).max(self.last_arrival_nanos);
            self.last_arrival_nanos = arrival;
            self.queue.enqueue(arrival, item);
            arrivals.push(arrival);
        }
        arrivals
    }

    /// Send a frame through the link's **serialising queue** model: the
    /// frame's messages occupy the pipe back-to-back starting no earlier
    /// than the pipe's current service frontier (a busy pipe delays the next
    /// frame — service time accumulates across frames), while the single
    /// sampled propagation latency is paid once per frame *after* each
    /// message leaves the pipe. Returns the arrival times in input order.
    ///
    /// Contrast with [`SimLink::send_batch`], whose frames only FIFO-order
    /// against earlier traffic without queueing behind it: that models an
    /// uncongested wire, this models a bandwidth-bound server-side pipeline
    /// (a node's single-threaded ingest apply loop). The
    /// [`SimLink::service_frontier_nanos`] after a run is the virtual
    /// instant the pipe goes idle, so `frontier − start` is the pipeline's
    /// busy time — the quantity an N-way-sharded deployment divides by N.
    pub fn send_batch_queued(&mut self, now_nanos: u64, items: Vec<(usize, T)>) -> Vec<u64> {
        let frame_latency = self.spec.sample_latency(&mut self.rng).as_nanos() as u64;
        let mut service = now_nanos.max(self.service_frontier_nanos);
        let mut arrivals = Vec::with_capacity(items.len());
        for (bytes, item) in items {
            service += self.spec.serialisation_delay(bytes).as_nanos() as u64;
            let arrival = (service + frame_latency).max(self.last_arrival_nanos);
            self.last_arrival_nanos = arrival;
            self.queue.enqueue(arrival, item);
            arrivals.push(arrival);
        }
        self.service_frontier_nanos = service;
        arrivals
    }

    /// The virtual instant the link's serialising pipe goes idle: the
    /// service frontier advanced by every [`SimLink::send_batch_queued`]
    /// frame so far (propagation excluded — latency is not occupancy).
    #[must_use]
    pub fn service_frontier_nanos(&self) -> u64 {
        self.service_frontier_nanos
    }

    /// Deliver every message that has arrived by `now_nanos`, in arrival
    /// order.
    pub fn drain_ready(&mut self, now_nanos: u64) -> Vec<(u64, T)> {
        self.queue.drain_ready(now_nanos)
    }

    /// Arrival time of the earliest in-flight message, if any.
    #[must_use]
    pub fn next_arrival(&self) -> Option<u64> {
        self.queue.next_arrival()
    }

    /// Number of in-flight messages.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_drains_in_arrival_order() {
        let mut q = DeliveryQueue::new();
        q.enqueue(300, "c");
        q.enqueue(100, "a");
        q.enqueue(200, "b");
        assert_eq!(q.len(), 3);
        assert_eq!(q.next_arrival(), Some(100));
        assert_eq!(q.drain_ready(50), Vec::<(u64, &str)>::new());
        assert_eq!(q.drain_ready(200), vec![(100, "a"), (200, "b")]);
        assert_eq!(q.drain_ready(1_000), vec![(300, "c")]);
        assert!(q.is_empty());
    }

    #[test]
    fn simultaneous_arrivals_drain_in_send_order() {
        let mut q = DeliveryQueue::new();
        q.enqueue(100, 1);
        q.enqueue(100, 2);
        q.enqueue(100, 3);
        assert_eq!(q.drain_ready(100), vec![(100, 1), (100, 2), (100, 3)]);
    }

    #[test]
    fn link_messages_never_overtake_each_other() {
        // A jittery link: raw sampled delays can invert; arrivals must not.
        let mut link = SimLink::new(LinkSpec::lan_100mbps(), 7);
        let mut previous = 0;
        for i in 0..500 {
            let arrival = link.send(i * 10, 256, i);
            assert!(arrival >= previous, "message {i} overtook its predecessor");
            previous = arrival;
        }
        let delivered = link.drain_ready(u64::MAX);
        assert_eq!(delivered.len(), 500);
        let order: Vec<u64> = delivered.iter().map(|(_, i)| *i).collect();
        assert_eq!(order, (0..500).collect::<Vec<_>>());
    }

    #[test]
    fn link_arrival_includes_latency_and_serialisation() {
        let mut link = SimLink::new(LinkSpec::constant(500.0, 100.0), 1);
        // 500 µs latency + 1250 bytes * 8 bits / 100 Mbps = 100 µs.
        let arrival = link.send(0, 1_250, ());
        assert_eq!(arrival, 600_000);
        assert_eq!(link.in_flight(), 1);
        assert!(link.drain_ready(599_999).is_empty());
        assert_eq!(link.drain_ready(600_000).len(), 1);
    }

    #[test]
    fn batched_send_shares_one_latency_sample() {
        // Deterministic link: per-message sends pay 500 µs latency each;
        // a batch frame pays it once plus cumulative serialisation.
        let mut link = SimLink::new(LinkSpec::constant(500.0, 100.0), 1);
        let arrivals = link.send_batch(0, vec![(1_250, "a"), (1_250, "b"), (1_250, "c")]);
        // 500 µs + k * 100 µs serialisation.
        assert_eq!(arrivals, vec![600_000, 700_000, 800_000]);
        // Distinct, strictly increasing arrivals within the frame.
        assert!(arrivals.windows(2).all(|w| w[1] > w[0]));
        let delivered = link.drain_ready(u64::MAX);
        assert_eq!(delivered.iter().map(|(_, m)| *m).collect::<Vec<_>>(), vec!["a", "b", "c"]);
    }

    #[test]
    fn batched_send_stays_fifo_with_earlier_traffic() {
        let mut link = SimLink::new(LinkSpec::lan_100mbps(), 7);
        let first = link.send(0, 4_096, 0u64);
        let batch = link.send_batch(1, (1..100).map(|i| (64usize, i)).collect());
        assert!(batch[0] >= first, "a later frame overtook in-flight traffic");
        // Items clamped behind the in-flight message share its arrival tick;
        // order within the frame is still preserved (non-decreasing).
        assert!(batch.windows(2).all(|w| w[1] >= w[0]));
        let order: Vec<u64> = link.drain_ready(u64::MAX).into_iter().map(|(_, i)| i).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn queued_batches_accumulate_service_not_propagation() {
        // Deterministic link: 500 µs propagation, 100 µs serialisation per
        // 1250-byte item. Two back-to-back frames sent at the same instant:
        // the second frame's items queue behind the first frame's pipe
        // occupancy, but the propagation latency is paid per frame, never
        // accumulated into the service frontier.
        let mut link = SimLink::new(LinkSpec::constant(500.0, 100.0), 1);
        let first = link.send_batch_queued(0, vec![(1_250, "a"), (1_250, "b")]);
        assert_eq!(first, vec![600_000, 700_000]);
        assert_eq!(link.service_frontier_nanos(), 200_000, "pipe busy = serialisation only");
        let second = link.send_batch_queued(0, vec![(1_250, "c"), (1_250, "d")]);
        // Service resumes at 200 µs: items release at 300/400 µs, + 500 µs
        // propagation each.
        assert_eq!(second, vec![800_000, 900_000]);
        assert_eq!(link.service_frontier_nanos(), 400_000);
        let order: Vec<&str> = link.drain_ready(u64::MAX).into_iter().map(|(_, m)| m).collect();
        assert_eq!(order, vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn link_sampling_is_deterministic_per_seed() {
        let run = |seed| {
            let mut link = SimLink::new(LinkSpec::lan_100mbps(), seed);
            (0..50).map(|i| link.send(i * 1_000, 128, ())).collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }
}
