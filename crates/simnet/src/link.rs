//! Network links.
//!
//! A [`LinkSpec`] models one hop of the deployment (client↔proxy,
//! proxy↔server, server↔DSMS): propagation latency with jitter plus a
//! serialisation cost proportional to the message size. Sampling is
//! deterministic given the caller's RNG, so experiment runs are reproducible.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// How the per-message latency is drawn.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LatencyModel {
    /// A constant latency.
    Constant,
    /// Uniform jitter in `[base - jitter, base + jitter]`.
    Uniform,
    /// A heavy-ish tail: with probability `tail_probability` the latency is
    /// multiplied by `tail_factor`. The paper notes that communication cost
    /// between entities "is less predictive and subject to change with large
    /// variance" — the tail models the occasional slow request visible at
    /// the start of Figure 7's request sequences.
    HeavyTail {
        /// Probability of a slow transfer.
        tail_probability: f64,
        /// Multiplier applied to the base latency for slow transfers.
        tail_factor: f64,
    },
}

/// One directed network link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Base one-way propagation latency in microseconds.
    pub base_latency_us: f64,
    /// Jitter half-width in microseconds (used by `Uniform` and added on top
    /// of the tail model).
    pub jitter_us: f64,
    /// Bandwidth in megabits per second (serialisation cost).
    pub bandwidth_mbps: f64,
    /// The latency model.
    pub model: LatencyModel,
}

impl LinkSpec {
    /// A link of a switched 100 Mbps LAN, as in the paper's testbed:
    /// ~300 µs base latency, ±100 µs jitter, occasional 10× stragglers.
    #[must_use]
    pub fn lan_100mbps() -> Self {
        LinkSpec {
            base_latency_us: 300.0,
            jitter_us: 100.0,
            bandwidth_mbps: 100.0,
            model: LatencyModel::HeavyTail { tail_probability: 0.01, tail_factor: 10.0 },
        }
    }

    /// A loopback link (entities co-located in one process).
    #[must_use]
    pub fn loopback() -> Self {
        LinkSpec {
            base_latency_us: 10.0,
            jitter_us: 2.0,
            bandwidth_mbps: 10_000.0,
            model: LatencyModel::Uniform,
        }
    }

    /// A wide-area link (used by the "commercial cloud" what-if experiments).
    #[must_use]
    pub fn wan() -> Self {
        LinkSpec {
            base_latency_us: 20_000.0,
            jitter_us: 5_000.0,
            bandwidth_mbps: 50.0,
            model: LatencyModel::HeavyTail { tail_probability: 0.05, tail_factor: 4.0 },
        }
    }

    /// A perfectly deterministic link, handy in tests.
    #[must_use]
    pub fn constant(latency_us: f64, bandwidth_mbps: f64) -> Self {
        LinkSpec {
            base_latency_us: latency_us,
            jitter_us: 0.0,
            bandwidth_mbps,
            model: LatencyModel::Constant,
        }
    }

    /// The serialisation time for a message of `bytes` bytes.
    #[must_use]
    pub fn serialisation_delay(&self, bytes: usize) -> Duration {
        if self.bandwidth_mbps <= 0.0 {
            return Duration::ZERO;
        }
        let bits = bytes as f64 * 8.0;
        let seconds = bits / (self.bandwidth_mbps * 1e6);
        Duration::from_secs_f64(seconds)
    }

    /// Sample the propagation latency (base + jitter + tail) for one frame,
    /// **excluding** serialisation cost. Messages sharing a frame — a batch
    /// shipped as one broker→node hop — share a single propagation sample
    /// and pay serialisation per message on top.
    pub fn sample_latency<R: Rng + ?Sized>(&self, rng: &mut R) -> Duration {
        let mut latency_us = match self.model {
            LatencyModel::Constant => self.base_latency_us,
            LatencyModel::Uniform => {
                if self.jitter_us > 0.0 {
                    rng.gen_range(
                        (self.base_latency_us - self.jitter_us).max(0.0)
                            ..=self.base_latency_us + self.jitter_us,
                    )
                } else {
                    self.base_latency_us
                }
            }
            LatencyModel::HeavyTail { tail_probability, tail_factor } => {
                let base = if self.jitter_us > 0.0 {
                    rng.gen_range(
                        (self.base_latency_us - self.jitter_us).max(0.0)
                            ..=self.base_latency_us + self.jitter_us,
                    )
                } else {
                    self.base_latency_us
                };
                if rng.gen_bool(tail_probability.clamp(0.0, 1.0)) {
                    base * tail_factor
                } else {
                    base
                }
            }
        };
        if latency_us < 0.0 {
            latency_us = 0.0;
        }
        Duration::from_secs_f64(latency_us / 1e6)
    }

    /// Sample the total one-way delay for a message of `bytes` bytes.
    pub fn sample_delay<R: Rng + ?Sized>(&self, bytes: usize, rng: &mut R) -> Duration {
        self.sample_latency(rng) + self.serialisation_delay(bytes)
    }

    /// The mean one-way delay for a message of `bytes` bytes (ignoring the
    /// heavy tail), useful for analytical sanity checks.
    #[must_use]
    pub fn expected_delay(&self, bytes: usize) -> Duration {
        Duration::from_secs_f64(self.base_latency_us / 1e6) + self.serialisation_delay(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn serialisation_delay_scales_with_size() {
        let link = LinkSpec::constant(0.0, 100.0);
        let one_kb = link.serialisation_delay(1024);
        let two_kb = link.serialisation_delay(2048);
        assert!((two_kb.as_secs_f64() - 2.0 * one_kb.as_secs_f64()).abs() < 1e-12);
        // 1 KiB over 100 Mbps ≈ 82 µs.
        assert!((one_kb.as_secs_f64() - 8192.0 / 100e6).abs() < 1e-12);
    }

    #[test]
    fn constant_link_is_deterministic() {
        let link = LinkSpec::constant(500.0, 100.0);
        let mut rng = StdRng::seed_from_u64(1);
        let a = link.sample_delay(100, &mut rng);
        let b = link.sample_delay(100, &mut rng);
        assert_eq!(a, b);
        assert_eq!(a, link.expected_delay(100));
    }

    #[test]
    fn uniform_jitter_stays_in_bounds() {
        let link = LinkSpec {
            base_latency_us: 300.0,
            jitter_us: 100.0,
            bandwidth_mbps: 100.0,
            model: LatencyModel::Uniform,
        };
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let d = link.sample_delay(0, &mut rng).as_secs_f64() * 1e6;
            assert!((200.0..=400.0).contains(&d), "delay {d} µs out of bounds");
        }
    }

    #[test]
    fn heavy_tail_produces_occasional_stragglers() {
        let link = LinkSpec {
            base_latency_us: 300.0,
            jitter_us: 0.0,
            bandwidth_mbps: 1e9,
            model: LatencyModel::HeavyTail { tail_probability: 0.1, tail_factor: 10.0 },
        };
        let mut rng = StdRng::seed_from_u64(42);
        let samples: Vec<f64> =
            (0..2000).map(|_| link.sample_delay(0, &mut rng).as_secs_f64() * 1e6).collect();
        let stragglers = samples.iter().filter(|d| **d > 1000.0).count();
        assert!(stragglers > 100, "expected ~10% stragglers, saw {stragglers}");
        assert!(stragglers < 400);
    }

    #[test]
    fn sampling_is_reproducible_for_a_fixed_seed() {
        let link = LinkSpec::lan_100mbps();
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..50).map(|_| link.sample_delay(256, &mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    fn frame_latency_excludes_serialisation() {
        let link = LinkSpec::constant(500.0, 100.0);
        let mut rng = StdRng::seed_from_u64(1);
        let latency = link.sample_latency(&mut rng);
        assert_eq!(latency, Duration::from_micros(500));
        assert_eq!(latency + link.serialisation_delay(1_250), link.sample_delay(1_250, &mut rng));
    }

    #[test]
    fn presets_are_ordered_sensibly() {
        let loopback = LinkSpec::loopback().expected_delay(1024);
        let lan = LinkSpec::lan_100mbps().expected_delay(1024);
        let wan = LinkSpec::wan().expected_delay(1024);
        assert!(loopback < lan);
        assert!(lan < wan);
    }
}
