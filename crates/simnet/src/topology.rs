//! Deployment topologies.
//!
//! The paper's evaluation deploys four entities — client interface, proxy,
//! data server (PDP/PEP host) and the StreamBase DSMS — on four machines of
//! a 100 Mbps intranet (Section 4.2). [`Topology`] names the entities and
//! the link between each communicating pair; the experiment harness asks it
//! for the delay of each hop of the Section 3.2 workflow.

use crate::link::LinkSpec;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::time::Duration;

/// A named deployment node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum NodeId {
    /// The client interface (the LTA warning system in the running example).
    Client,
    /// The proxy with the stream-handle cache.
    Proxy,
    /// The data server hosting the PDP, PEP and policy store.
    DataServer,
    /// The back-end DSMS host (StreamBase in the paper, `exacml-dsms` here).
    Dsms,
    /// A scale-out data-server shard of the brokering fabric (PR 3): each
    /// one hosts its own PDP, policy store and stream engine behind the
    /// routing broker. Links for server nodes fall back to the topology's
    /// default unless overridden.
    Server(u16),
}

impl NodeId {
    /// All nodes of the paper's four-machine testbed (fabric server shards
    /// are open-ended and not enumerated here).
    #[must_use]
    pub fn all() -> [NodeId; 4] {
        [NodeId::Client, NodeId::Proxy, NodeId::DataServer, NodeId::Dsms]
    }

    /// Human-readable name (fabric shards share the generic `server` name;
    /// their `Display` form carries the index).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            NodeId::Client => "client",
            NodeId::Proxy => "proxy",
            NodeId::DataServer => "data-server",
            NodeId::Dsms => "dsms",
            NodeId::Server(_) => "server",
        }
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NodeId::Server(index) => write!(f, "server-{index}"),
            other => f.write_str(other.name()),
        }
    }
}

/// A set of nodes and the links between them.
#[derive(Debug, Clone)]
pub struct Topology {
    links: HashMap<(NodeId, NodeId), LinkSpec>,
    default_link: LinkSpec,
}

impl Topology {
    /// A topology where every pair communicates over the given default link.
    #[must_use]
    pub fn uniform(default_link: LinkSpec) -> Self {
        Topology { links: HashMap::new(), default_link }
    }

    /// The paper's cloud-like testbed: the two servers (data server and
    /// DSMS) sit in the same server room, the proxy is a workstation and the
    /// client a laptop, all on the 100 Mbps university intranet.
    #[must_use]
    pub fn paper_testbed() -> Self {
        let mut t = Topology::uniform(LinkSpec::lan_100mbps());
        // Server-room machines are one switch apart: lower latency.
        t.set_link(
            NodeId::DataServer,
            NodeId::Dsms,
            LinkSpec { base_latency_us: 150.0, ..LinkSpec::lan_100mbps() },
        );
        t
    }

    /// A topology where everything runs in one process (used by unit tests
    /// and the quickstart example).
    #[must_use]
    pub fn local() -> Self {
        Topology::uniform(LinkSpec::loopback())
    }

    /// A what-if topology where the client reaches the cloud over a WAN —
    /// the "migrate to Amazon EC2 / Azure" scenario of the paper's future
    /// work.
    #[must_use]
    pub fn public_cloud() -> Self {
        let mut t = Topology::uniform(LinkSpec::lan_100mbps());
        t.set_link(NodeId::Client, NodeId::Proxy, LinkSpec::wan());
        t.set_link(NodeId::Client, NodeId::DataServer, LinkSpec::wan());
        t
    }

    /// Override the link between two nodes (both directions).
    pub fn set_link(&mut self, a: NodeId, b: NodeId, link: LinkSpec) {
        self.links.insert(ordered(a, b), link);
    }

    /// The link between two nodes.
    #[must_use]
    pub fn link(&self, a: NodeId, b: NodeId) -> LinkSpec {
        if a == b {
            // Same machine: negligible cost.
            return LinkSpec::constant(1.0, 100_000.0);
        }
        self.links.get(&ordered(a, b)).copied().unwrap_or(self.default_link)
    }

    /// Sample the one-way delay for a message of `bytes` bytes from `a` to `b`.
    pub fn transfer_delay<R: Rng + ?Sized>(
        &self,
        a: NodeId,
        b: NodeId,
        bytes: usize,
        rng: &mut R,
    ) -> Duration {
        self.link(a, b).sample_delay(bytes, rng)
    }

    /// Sample a request/response round trip (two messages of the given sizes).
    pub fn round_trip<R: Rng + ?Sized>(
        &self,
        a: NodeId,
        b: NodeId,
        request_bytes: usize,
        response_bytes: usize,
        rng: &mut R,
    ) -> Duration {
        self.transfer_delay(a, b, request_bytes, rng)
            + self.transfer_delay(b, a, response_bytes, rng)
    }
}

fn ordered(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn node_names() {
        assert_eq!(NodeId::all().len(), 4);
        assert_eq!(NodeId::Proxy.to_string(), "proxy");
        assert_eq!(NodeId::Server(3).to_string(), "server-3");
        assert_eq!(NodeId::Server(3).name(), "server");
    }

    #[test]
    fn server_nodes_use_the_default_link_unless_overridden() {
        let mut t = Topology::paper_testbed();
        assert_eq!(t.link(NodeId::DataServer, NodeId::Server(0)), LinkSpec::lan_100mbps());
        t.set_link(NodeId::DataServer, NodeId::Server(0), LinkSpec::constant(150.0, 1000.0));
        assert_eq!(
            t.link(NodeId::Server(0), NodeId::DataServer),
            LinkSpec::constant(150.0, 1000.0)
        );
        // Other shards keep the default.
        assert_eq!(t.link(NodeId::DataServer, NodeId::Server(1)), LinkSpec::lan_100mbps());
    }

    #[test]
    fn uniform_topology_uses_default_link() {
        let t = Topology::uniform(LinkSpec::constant(100.0, 100.0));
        assert_eq!(t.link(NodeId::Client, NodeId::Proxy), LinkSpec::constant(100.0, 100.0));
    }

    #[test]
    fn link_overrides_are_symmetric() {
        let mut t = Topology::uniform(LinkSpec::lan_100mbps());
        t.set_link(NodeId::DataServer, NodeId::Dsms, LinkSpec::constant(5.0, 1000.0));
        assert_eq!(t.link(NodeId::Dsms, NodeId::DataServer), LinkSpec::constant(5.0, 1000.0));
        assert_eq!(t.link(NodeId::DataServer, NodeId::Dsms), LinkSpec::constant(5.0, 1000.0));
    }

    #[test]
    fn same_node_transfer_is_negligible() {
        let t = Topology::paper_testbed();
        let mut rng = StdRng::seed_from_u64(1);
        let d = t.transfer_delay(NodeId::Proxy, NodeId::Proxy, 10_000, &mut rng);
        assert!(d < Duration::from_micros(10));
    }

    #[test]
    fn paper_testbed_server_room_link_is_faster() {
        let t = Topology::paper_testbed();
        let server_room = t.link(NodeId::DataServer, NodeId::Dsms).base_latency_us;
        let campus = t.link(NodeId::Client, NodeId::Proxy).base_latency_us;
        assert!(server_room < campus);
    }

    #[test]
    fn public_cloud_client_hop_dominates() {
        let t = Topology::public_cloud();
        let wan = t.link(NodeId::Client, NodeId::Proxy).expected_delay(512);
        let lan = t.link(NodeId::Proxy, NodeId::DataServer).expected_delay(512);
        assert!(wan > lan * 10);
    }

    #[test]
    fn round_trip_is_sum_of_two_transfers_for_constant_links() {
        let t = Topology::uniform(LinkSpec::constant(100.0, 100.0));
        let mut rng = StdRng::seed_from_u64(9);
        let rt = t.round_trip(NodeId::Client, NodeId::Proxy, 1000, 2000, &mut rng);
        let expected = LinkSpec::constant(100.0, 100.0).expected_delay(1000)
            + LinkSpec::constant(100.0, 100.0).expected_delay(2000);
        assert_eq!(rt, expected);
    }
}
