//! # exacml-simnet — simulated cloud deployment environment
//!
//! The paper evaluates eXACML+ on a cloud-like testbed of four machines
//! (data server, StreamBase host, proxy workstation, client laptop)
//! connected by the university's 100 Mbps intranet, and observes that about
//! two thirds of the end-to-end request latency is network traffic between
//! those entities (Section 4.2).
//!
//! We cannot reproduce that LAN, so this crate provides a deterministic
//! substitute: named nodes connected by [`link::LinkSpec`]s whose latency,
//! jitter and bandwidth are configurable, a [`topology::Topology`] describing
//! which entity talks to which over which link, and [`clock::Clock`]
//! abstractions so unit tests can run on a manual clock while experiment
//! binaries accumulate simulated network delay on top of real compute time.
//!
//! The default [`topology::Topology::paper_testbed`] is calibrated to a
//! switched 100 Mbps LAN: sub-millisecond propagation latency, small jitter,
//! and a serialisation cost of 8 ns per byte (100 Mbps), which reproduces
//! the paper's observation that the network share dominates PDP and
//! query-graph manipulation cost without dwarfing it.

pub mod clock;
pub mod fault;
pub mod link;
pub mod queue;
pub mod topology;

pub use clock::{Clock, ManualClock, SimClock, WallClock};
pub use fault::{Fault, FaultPlan, TimedFault};
pub use link::{LatencyModel, LinkSpec};
pub use queue::{DeliveryQueue, SimLink};
pub use topology::{NodeId, Topology};

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::clock::{Clock, ManualClock, SimClock, WallClock};
    pub use crate::fault::{Fault, FaultPlan, TimedFault};
    pub use crate::link::{LatencyModel, LinkSpec};
    pub use crate::queue::{DeliveryQueue, SimLink};
    pub use crate::topology::{NodeId, Topology};
}
