//! Fault injection over the simulated network.
//!
//! A [`FaultPlan`] is a declarative schedule of failures keyed to the
//! virtual clock: link drops, partitions, latency spikes and whole-node
//! crashes, each active during a `[from, until)` window of simulated time.
//! The plan itself is immutable once built and is consulted (never mutated)
//! by whatever component simulates delivery — the fabric broker before a
//! broker→node hop, the replication shipper before a batch send — so a
//! single `Arc<FaultPlan>` can be shared across every layer of a chaos
//! test without locks.
//!
//! Two kinds of node failure are distinguished on purpose:
//!
//! * [`Fault::NodeDown`] makes a node *unreachable* for the window — its
//!   state survives and it answers again once the window closes (a network
//!   blip, a GC pause, an overloaded NIC);
//! * [`Fault::Crash`] declares the node *dead* at the window start — the
//!   component applying the plan is expected to destroy the node's
//!   in-memory state, and (if the window closes) restart it empty. Crash
//!   application is edge-triggered, so consumers track which crash entries
//!   they have already applied via the index reported by
//!   [`FaultPlan::crash_windows`].

use crate::topology::NodeId;
use std::time::Duration;

/// One kind of injected failure.
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// Every message between `a` and `b` (either direction) is dropped.
    LinkDrop {
        /// One endpoint of the link.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// A network partition: messages between any node of `left` and any
    /// node of `right` are dropped. Traffic within each side is unaffected.
    Partition {
        /// Nodes on one side of the partition.
        left: Vec<NodeId>,
        /// Nodes on the other side.
        right: Vec<NodeId>,
    },
    /// Latency on the link between `a` and `b` is multiplied by `factor`
    /// (overlapping spikes multiply).
    LatencySpike {
        /// One endpoint of the link.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
        /// Multiplier applied to the sampled delay.
        factor: f64,
    },
    /// The node is unreachable for the window; its state survives.
    NodeDown {
        /// The unreachable node.
        node: NodeId,
    },
    /// The node crashes at the window start (state lost) and — if the
    /// window is bounded — restarts at the window end.
    Crash {
        /// The crashing node.
        node: NodeId,
    },
}

/// A fault active during `[from_nanos, until_nanos)` of virtual time.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedFault {
    /// The failure injected.
    pub fault: Fault,
    /// Window start, in virtual-clock nanoseconds (inclusive).
    pub from_nanos: u64,
    /// Window end, in virtual-clock nanoseconds (exclusive). `u64::MAX`
    /// means the fault never heals.
    pub until_nanos: u64,
}

impl TimedFault {
    fn active(&self, now_nanos: u64) -> bool {
        self.from_nanos <= now_nanos && now_nanos < self.until_nanos
    }
}

/// A declarative, immutable-once-built schedule of injected faults.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    faults: Vec<TimedFault>,
}

impl FaultPlan {
    /// An empty plan (nothing ever fails).
    #[must_use]
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Add a fault active during `[from, until)` of virtual time
    /// (builder-style).
    #[must_use]
    pub fn inject(mut self, fault: Fault, from: Duration, until: Duration) -> Self {
        self.push(fault, from, until);
        self
    }

    /// Add a fault that starts at `from` and never heals (builder-style).
    #[must_use]
    pub fn inject_forever(mut self, fault: Fault, from: Duration) -> Self {
        self.faults.push(TimedFault {
            fault,
            from_nanos: from.as_nanos() as u64,
            until_nanos: u64::MAX,
        });
        self
    }

    /// Add a fault active during `[from, until)` of virtual time.
    pub fn push(&mut self, fault: Fault, from: Duration, until: Duration) {
        self.faults.push(TimedFault {
            fault,
            from_nanos: from.as_nanos() as u64,
            until_nanos: until.as_nanos() as u64,
        });
    }

    /// The scheduled faults, in insertion order.
    #[must_use]
    pub fn faults(&self) -> &[TimedFault] {
        &self.faults
    }

    /// Whether no fault is scheduled at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Whether `node` is unreachable at `now_nanos` — either a
    /// [`Fault::NodeDown`] window or an un-restarted [`Fault::Crash`]
    /// covers the instant.
    #[must_use]
    pub fn node_down(&self, node: NodeId, now_nanos: u64) -> bool {
        self.faults.iter().any(|t| {
            t.active(now_nanos)
                && matches!(&t.fault,
                    Fault::NodeDown { node: n } | Fault::Crash { node: n } if *n == node)
        })
    }

    /// Whether a message between `a` and `b` is dropped at `now_nanos`
    /// (link drop, partition membership, or either endpoint down).
    #[must_use]
    pub fn link_down(&self, a: NodeId, b: NodeId, now_nanos: u64) -> bool {
        if self.node_down(a, now_nanos) || self.node_down(b, now_nanos) {
            return true;
        }
        self.faults.iter().any(|t| {
            if !t.active(now_nanos) {
                return false;
            }
            match &t.fault {
                Fault::LinkDrop { a: x, b: y } => (*x == a && *y == b) || (*x == b && *y == a),
                Fault::Partition { left, right } => {
                    (left.contains(&a) && right.contains(&b))
                        || (left.contains(&b) && right.contains(&a))
                }
                _ => false,
            }
        })
    }

    /// The latency multiplier for a message between `a` and `b` at
    /// `now_nanos` (1.0 when no spike is active; overlapping spikes
    /// multiply).
    #[must_use]
    pub fn latency_factor(&self, a: NodeId, b: NodeId, now_nanos: u64) -> f64 {
        self.faults
            .iter()
            .filter(|t| t.active(now_nanos))
            .filter_map(|t| match &t.fault {
                Fault::LatencySpike { a: x, b: y, factor }
                    if (*x == a && *y == b) || (*x == b && *y == a) =>
                {
                    Some(*factor)
                }
                _ => None,
            })
            .product()
    }

    /// The crash schedule: `(index, node, crash_at_nanos, restart_at_nanos)`
    /// for every [`Fault::Crash`] entry. Crash application is edge-triggered
    /// and therefore stateful on the consumer side; the index identifies
    /// the entry so an applier can remember which crashes (and restarts) it
    /// has already carried out. `restart_at_nanos == u64::MAX` means the
    /// node never comes back.
    pub fn crash_windows(&self) -> impl Iterator<Item = (usize, NodeId, u64, u64)> + '_ {
        self.faults.iter().enumerate().filter_map(|(i, t)| match &t.fault {
            Fault::Crash { node } => Some((i, *node, t.from_nanos, t.until_nanos)),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000;

    #[test]
    fn link_drop_is_windowed_and_symmetric() {
        let plan = FaultPlan::new().inject(
            Fault::LinkDrop { a: NodeId::Server(0), b: NodeId::Server(1) },
            Duration::from_millis(10),
            Duration::from_millis(20),
        );
        assert!(!plan.link_down(NodeId::Server(0), NodeId::Server(1), 9 * MS));
        assert!(plan.link_down(NodeId::Server(0), NodeId::Server(1), 10 * MS));
        assert!(plan.link_down(NodeId::Server(1), NodeId::Server(0), 15 * MS));
        assert!(!plan.link_down(NodeId::Server(0), NodeId::Server(1), 20 * MS));
        // Unrelated links are unaffected.
        assert!(!plan.link_down(NodeId::Server(0), NodeId::Server(2), 15 * MS));
    }

    #[test]
    fn partition_blocks_cross_side_traffic_only() {
        let plan = FaultPlan::new().inject(
            Fault::Partition {
                left: vec![NodeId::Server(0)],
                right: vec![NodeId::Server(1), NodeId::Server(2)],
            },
            Duration::ZERO,
            Duration::from_millis(5),
        );
        assert!(plan.link_down(NodeId::Server(0), NodeId::Server(2), 0));
        assert!(plan.link_down(NodeId::Server(1), NodeId::Server(0), 0));
        assert!(!plan.link_down(NodeId::Server(1), NodeId::Server(2), 0));
        assert!(!plan.link_down(NodeId::Server(0), NodeId::Server(2), 5 * MS));
    }

    #[test]
    fn node_down_blocks_every_link_of_the_node() {
        let plan = FaultPlan::new().inject(
            Fault::NodeDown { node: NodeId::Server(1) },
            Duration::from_millis(1),
            Duration::from_millis(2),
        );
        assert!(plan.node_down(NodeId::Server(1), MS));
        assert!(plan.link_down(NodeId::Server(0), NodeId::Server(1), MS));
        assert!(plan.link_down(NodeId::Server(1), NodeId::DataServer, MS));
        assert!(!plan.link_down(NodeId::Server(0), NodeId::Server(2), MS));
        assert!(!plan.node_down(NodeId::Server(1), 2 * MS));
    }

    #[test]
    fn latency_spikes_multiply_and_heal() {
        let plan = FaultPlan::new()
            .inject(
                Fault::LatencySpike { a: NodeId::Server(0), b: NodeId::Server(1), factor: 10.0 },
                Duration::ZERO,
                Duration::from_millis(10),
            )
            .inject(
                Fault::LatencySpike { a: NodeId::Server(1), b: NodeId::Server(0), factor: 2.0 },
                Duration::from_millis(5),
                Duration::from_millis(10),
            );
        assert_eq!(plan.latency_factor(NodeId::Server(0), NodeId::Server(1), 0), 10.0);
        assert_eq!(plan.latency_factor(NodeId::Server(1), NodeId::Server(0), 6 * MS), 20.0);
        assert_eq!(plan.latency_factor(NodeId::Server(0), NodeId::Server(1), 10 * MS), 1.0);
        assert_eq!(plan.latency_factor(NodeId::Server(0), NodeId::Server(2), 0), 1.0);
    }

    #[test]
    fn crash_windows_report_schedule_and_block_reachability() {
        let plan = FaultPlan::new()
            .inject(
                Fault::Crash { node: NodeId::Server(2) },
                Duration::from_millis(3),
                Duration::from_millis(7),
            )
            .inject_forever(Fault::Crash { node: NodeId::Server(0) }, Duration::from_millis(4));
        let windows: Vec<_> = plan.crash_windows().collect();
        assert_eq!(windows.len(), 2);
        assert_eq!(windows[0], (0, NodeId::Server(2), 3 * MS, 7 * MS));
        assert_eq!(windows[1], (1, NodeId::Server(0), 4 * MS, u64::MAX));
        // While crashed the node is also unreachable.
        assert!(plan.node_down(NodeId::Server(2), 5 * MS));
        assert!(!plan.node_down(NodeId::Server(2), 7 * MS));
        assert!(plan.node_down(NodeId::Server(0), u64::MAX - 1));
    }
}
