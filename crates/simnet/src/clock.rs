//! Clock abstractions.
//!
//! Experiment binaries measure real elapsed time (PDP evaluation, query-graph
//! manipulation, DSMS deployment) and add simulated network delay on top;
//! unit tests use a manual clock so they are instantaneous and deterministic.

use parking_lot::Mutex;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A monotonic clock measured in nanoseconds.
pub trait Clock: Send + Sync {
    /// Nanoseconds elapsed since the clock's epoch.
    fn now_nanos(&self) -> u64;

    /// Convenience view in seconds.
    fn now_secs(&self) -> f64 {
        self.now_nanos() as f64 / 1e9
    }
}

/// Wall-clock time relative to the moment the clock was created.
#[derive(Debug, Clone)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// A wall clock starting now.
    #[must_use]
    pub fn new() -> Self {
        WallClock { origin: Instant::now() }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now_nanos(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
}

/// A manually advanced clock for tests.
#[derive(Debug, Clone, Default)]
pub struct ManualClock {
    nanos: Arc<Mutex<u64>>,
}

impl ManualClock {
    /// A manual clock at time zero.
    #[must_use]
    pub fn new() -> Self {
        ManualClock::default()
    }

    /// Advance the clock.
    pub fn advance(&self, by: Duration) {
        *self.nanos.lock() += by.as_nanos() as u64;
    }

    /// Set the absolute time in nanoseconds.
    pub fn set_nanos(&self, nanos: u64) {
        *self.nanos.lock() = nanos;
    }
}

impl Clock for ManualClock {
    fn now_nanos(&self) -> u64 {
        *self.nanos.lock()
    }
}

/// A clock that combines a real clock with accumulated *simulated* delay —
/// the experiment harness charges simulated network transfers to this
/// account so that measured response times include them.
#[derive(Debug, Clone)]
pub struct SimClock<C: Clock> {
    real: C,
    simulated_extra: Arc<Mutex<u64>>,
}

impl<C: Clock> SimClock<C> {
    /// Wrap a real clock.
    #[must_use]
    pub fn new(real: C) -> Self {
        SimClock { real, simulated_extra: Arc::new(Mutex::new(0)) }
    }

    /// Charge additional simulated time (e.g. a network transfer).
    pub fn charge(&self, delay: Duration) {
        *self.simulated_extra.lock() += delay.as_nanos() as u64;
    }

    /// The accumulated simulated time only.
    #[must_use]
    pub fn simulated_nanos(&self) -> u64 {
        *self.simulated_extra.lock()
    }
}

impl<C: Clock> Clock for SimClock<C> {
    fn now_nanos(&self) -> u64 {
        self.real.now_nanos() + *self.simulated_extra.lock()
    }
}

// Every simnet clock can back a telemetry span, so stage timings can be
// taken against virtual time (deterministic per seed) as easily as against
// the wall. A blanket `impl<C: Clock> SpanClock for C` would forbid other
// crates' clocks, so each concrete clock gets its own impl.
impl exacml_telemetry::SpanClock for WallClock {
    fn now_nanos(&self) -> u64 {
        Clock::now_nanos(self)
    }
}

impl exacml_telemetry::SpanClock for ManualClock {
    fn now_nanos(&self) -> u64 {
        Clock::now_nanos(self)
    }
}

impl<C: Clock> exacml_telemetry::SpanClock for SimClock<C> {
    fn now_nanos(&self) -> u64 {
        Clock::now_nanos(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotonic() {
        let c = WallClock::new();
        let a = c.now_nanos();
        let b = c.now_nanos();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_advances_only_on_demand() {
        let c = ManualClock::new();
        assert_eq!(c.now_nanos(), 0);
        c.advance(Duration::from_millis(5));
        assert_eq!(c.now_nanos(), 5_000_000);
        c.set_nanos(42);
        assert_eq!(c.now_nanos(), 42);
        assert!((c.now_secs() - 42e-9).abs() < 1e-15);
    }

    #[test]
    fn manual_clock_backs_telemetry_spans() {
        use exacml_telemetry::{Stage, Telemetry};
        let clock = ManualClock::new();
        let telemetry = Telemetry::new();
        {
            let _span = telemetry.span_with(Stage::BrokerRoute, &clock);
            clock.advance(Duration::from_micros(4));
        }
        let snapshot = telemetry.snapshot();
        assert_eq!(snapshot.stage(Stage::BrokerRoute).unwrap().total_nanos, 4_000);
    }

    #[test]
    fn sim_clock_adds_charged_delay() {
        let manual = ManualClock::new();
        let sim = SimClock::new(manual.clone());
        manual.advance(Duration::from_millis(2));
        sim.charge(Duration::from_millis(3));
        assert_eq!(sim.now_nanos(), 5_000_000);
        assert_eq!(sim.simulated_nanos(), 3_000_000);
    }
}
