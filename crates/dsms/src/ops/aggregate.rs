//! The window-based aggregation box.
//!
//! A window-based aggregation operator consists of a sliding window
//! specification (type, size, advance step) and a list of
//! `attribute:aggregate-function` pairs (Section 2.2). For every window that
//! closes, one output tuple is produced whose fields are named
//! `<function><attribute>` — matching the StreamSQL the paper shows in
//! Figure 4(b) (`avg(rainrate) AS avgrainrate`).

use crate::error::DsmsError;
use crate::schema::{Field, Schema};
use crate::tuple::Tuple;
use crate::value::{DataType, Value};
use crate::window::{SlidingBuffer, WindowSpec};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// The aggregate functions supported by the obligation vocabulary
/// (`{Avg, Max, Min, Count, LastValue, FirstValue, ...}` in Section 2.2 —
/// we additionally support `Sum` and `Stddev`, which StreamBase provides and
/// the Section 3.4 reconstruction example uses `Sum`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AggFunc {
    /// Arithmetic mean.
    Avg,
    /// Maximum.
    Max,
    /// Minimum.
    Min,
    /// Number of tuples in the window.
    Count,
    /// Sum.
    Sum,
    /// Value of the attribute in the last tuple of the window.
    LastValue,
    /// Value of the attribute in the first tuple of the window.
    FirstValue,
    /// Population standard deviation.
    Stddev,
}

impl AggFunc {
    /// The keyword used in obligations and StreamSQL (`avg`, `lastval`, ...).
    #[must_use]
    pub fn keyword(self) -> &'static str {
        match self {
            AggFunc::Avg => "avg",
            AggFunc::Max => "max",
            AggFunc::Min => "min",
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::LastValue => "lastval",
            AggFunc::FirstValue => "firstval",
            AggFunc::Stddev => "stddev",
        }
    }

    /// Parse the keyword (several aliases accepted).
    #[must_use]
    pub fn from_keyword(kw: &str) -> Option<AggFunc> {
        match kw.to_ascii_lowercase().as_str() {
            "avg" | "average" | "mean" => Some(AggFunc::Avg),
            "max" | "maximum" => Some(AggFunc::Max),
            "min" | "minimum" => Some(AggFunc::Min),
            "count" => Some(AggFunc::Count),
            "sum" => Some(AggFunc::Sum),
            "lastval" | "lastvalue" | "last" => Some(AggFunc::LastValue),
            "firstval" | "firstvalue" | "first" => Some(AggFunc::FirstValue),
            "stddev" | "stdev" => Some(AggFunc::Stddev),
            _ => None,
        }
    }

    /// Every supported function, for exhaustive tests and random workloads.
    #[must_use]
    pub fn all() -> [AggFunc; 8] {
        [
            AggFunc::Avg,
            AggFunc::Max,
            AggFunc::Min,
            AggFunc::Count,
            AggFunc::Sum,
            AggFunc::LastValue,
            AggFunc::FirstValue,
            AggFunc::Stddev,
        ]
    }

    /// Whether the function requires a numeric input attribute.
    #[must_use]
    pub fn requires_numeric(self) -> bool {
        matches!(self, AggFunc::Avg | AggFunc::Sum | AggFunc::Stddev)
    }

    /// The output type of the function given the input attribute type.
    #[must_use]
    pub fn output_type(self, input: DataType) -> DataType {
        match self {
            AggFunc::Count => DataType::Int,
            AggFunc::Avg | AggFunc::Sum | AggFunc::Stddev => DataType::Double,
            AggFunc::Max | AggFunc::Min | AggFunc::LastValue | AggFunc::FirstValue => input,
        }
    }

    /// Compute the aggregate over the values of one attribute in one window.
    #[must_use]
    pub fn compute(self, values: &[Value]) -> Value {
        match self {
            AggFunc::Count => Value::Int(values.len() as i64),
            AggFunc::LastValue => values.last().cloned().unwrap_or(Value::Null),
            AggFunc::FirstValue => values.first().cloned().unwrap_or(Value::Null),
            AggFunc::Sum => Value::Double(values.iter().filter_map(Value::as_f64).sum::<f64>()),
            AggFunc::Avg => {
                let nums: Vec<f64> = values.iter().filter_map(Value::as_f64).collect();
                if nums.is_empty() {
                    Value::Null
                } else {
                    Value::Double(nums.iter().sum::<f64>() / nums.len() as f64)
                }
            }
            AggFunc::Stddev => {
                let nums: Vec<f64> = values.iter().filter_map(Value::as_f64).collect();
                if nums.is_empty() {
                    Value::Null
                } else {
                    let mean = nums.iter().sum::<f64>() / nums.len() as f64;
                    let var = nums.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>()
                        / nums.len() as f64;
                    Value::Double(var.sqrt())
                }
            }
            AggFunc::Max => best_by(values, |a, b| a > b),
            AggFunc::Min => best_by(values, |a, b| a < b),
        }
    }
}

/// Pick the extremal numeric value (Max/Min); falls back to the first value
/// for non-numeric attributes (lexicographic extremes of strings are not
/// needed by the paper's workloads).
fn best_by(values: &[Value], better: impl Fn(f64, f64) -> bool) -> Value {
    let mut best: Option<(f64, &Value)> = None;
    for v in values {
        if let Some(x) = v.as_f64() {
            match best {
                Some((cur, _)) if !better(x, cur) => {}
                _ => best = Some((x, v)),
            }
        }
    }
    match best {
        Some((_, v)) => v.clone(),
        None => values.first().cloned().unwrap_or(Value::Null),
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// One `attribute:function` pair of an aggregation operator, e.g.
/// `rainrate:avg` in the paper's obligation encoding.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AggSpec {
    /// Attribute to aggregate.
    pub attribute: String,
    /// Aggregate function to apply.
    pub function: AggFunc,
}

impl AggSpec {
    /// Construct a spec.
    pub fn new(attribute: impl Into<String>, function: AggFunc) -> Self {
        AggSpec { attribute: attribute.into(), function }
    }

    /// Parse the obligation encoding `attribute:function`
    /// (e.g. `rainrate:avg`).
    #[must_use]
    pub fn parse(text: &str) -> Option<AggSpec> {
        let (attr, func) = text.split_once(':')?;
        let function = AggFunc::from_keyword(func.trim())?;
        let attribute = attr.trim();
        if attribute.is_empty() {
            return None;
        }
        Some(AggSpec { attribute: attribute.to_string(), function })
    }

    /// The obligation encoding `attribute:function`.
    #[must_use]
    pub fn encode(&self) -> String {
        format!("{}:{}", self.attribute, self.function.keyword())
    }

    /// The output field name, `<function><attribute>` as in Figure 4(b).
    #[must_use]
    pub fn output_name(&self) -> String {
        format!("{}{}", self.function.keyword(), self.attribute)
    }
}

impl fmt::Display for AggSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.function, self.attribute)
    }
}

/// The window-based aggregation operator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggregateOp {
    /// Sliding window parameters.
    pub window: WindowSpec,
    /// The aggregations to compute per window.
    pub specs: Vec<AggSpec>,
}

impl AggregateOp {
    /// Construct an aggregation operator.
    #[must_use]
    pub fn new(window: WindowSpec, specs: Vec<AggSpec>) -> Self {
        AggregateOp { window, specs }
    }

    /// Validate window parameters, attribute existence and function/type
    /// compatibility against the input schema.
    ///
    /// # Errors
    /// Returns [`DsmsError::InvalidGraph`], [`DsmsError::UnknownAttribute`] or
    /// [`DsmsError::BadAggregate`].
    pub fn validate(&self, input: &Schema) -> Result<(), DsmsError> {
        self.window.validate().map_err(DsmsError::InvalidGraph)?;
        if self.specs.is_empty() {
            return Err(DsmsError::InvalidGraph("aggregation computes no functions".into()));
        }
        for spec in &self.specs {
            let Some(field) = input.field(&spec.attribute) else {
                return Err(DsmsError::UnknownAttribute {
                    operator: "aggregate".into(),
                    attribute: spec.attribute.clone(),
                });
            };
            if spec.function.requires_numeric() && !field.data_type.is_numeric() {
                return Err(DsmsError::BadAggregate {
                    attribute: spec.attribute.clone(),
                    function: spec.function.keyword().into(),
                    detail: format!("attribute has non-numeric type {}", field.data_type),
                });
            }
        }
        Ok(())
    }

    /// The output schema: one field per aggregation spec, named
    /// `<function><attribute>`.
    ///
    /// # Errors
    /// Fails when validation against the input schema fails.
    pub fn output_schema(&self, input: &Schema) -> Result<Schema, DsmsError> {
        self.validate(input)?;
        let fields = self
            .specs
            .iter()
            .map(|spec| {
                let input_type =
                    input.field(&spec.attribute).map(|f| f.data_type).expect("validated above");
                Field::new(spec.output_name(), spec.function.output_type(input_type))
            })
            .collect();
        Ok(Schema::new(fields))
    }

    /// Feed one tuple into the window buffer and produce one output tuple per
    /// window that closes.
    #[must_use]
    pub fn apply(
        &self,
        buffer: &mut SlidingBuffer,
        tuple: Tuple,
        output_schema: &Arc<Schema>,
    ) -> Vec<Tuple> {
        buffer
            .push(tuple)
            .into_iter()
            .map(|window| self.aggregate_window(&window, output_schema))
            .collect()
    }

    /// Aggregate the contents of one closed window into an output tuple.
    #[must_use]
    pub fn aggregate_window(&self, window: &[Tuple], output_schema: &Arc<Schema>) -> Tuple {
        let values: Vec<Value> = self
            .specs
            .iter()
            .map(|spec| {
                let column: Vec<Value> =
                    window.iter().filter_map(|t| t.get(&spec.attribute).cloned()).collect();
                spec.function.compute(&column)
            })
            .collect();
        Tuple::new(Arc::clone(output_schema), values)
            .expect("aggregate output always matches the derived schema")
    }
}

impl fmt::Display for AggregateOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let specs: Vec<String> = self.specs.iter().map(ToString::to_string).collect();
        write!(f, "{} over {}", specs.join(", "), self.window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::DataType;

    fn schema() -> Schema {
        Schema::from_pairs([
            ("samplingtime", DataType::Timestamp),
            ("rainrate", DataType::Double),
            ("windspeed", DataType::Double),
            ("station", DataType::Text),
        ])
    }

    fn tup(ts: i64, rain: f64, wind: f64) -> Tuple {
        Tuple::builder(&schema())
            .set("samplingtime", Value::Timestamp(ts))
            .set("rainrate", rain)
            .set("windspeed", wind)
            .set("station", "S11")
            .finish()
            .unwrap()
    }

    #[test]
    fn keyword_round_trip() {
        for f in AggFunc::all() {
            assert_eq!(AggFunc::from_keyword(f.keyword()), Some(f));
        }
        assert_eq!(AggFunc::from_keyword("average"), Some(AggFunc::Avg));
        assert_eq!(AggFunc::from_keyword("bogus"), None);
    }

    #[test]
    fn agg_spec_encoding_matches_paper() {
        let spec = AggSpec::parse("rainrate:avg").unwrap();
        assert_eq!(spec.attribute, "rainrate");
        assert_eq!(spec.function, AggFunc::Avg);
        assert_eq!(spec.encode(), "rainrate:avg");
        assert_eq!(spec.output_name(), "avgrainrate");
        assert_eq!(
            AggSpec::parse("samplingtime:lastval").unwrap().output_name(),
            "lastvalsamplingtime"
        );
        assert!(AggSpec::parse("rainrate").is_none());
        assert!(AggSpec::parse(":avg").is_none());
        assert!(AggSpec::parse("rainrate:bogus").is_none());
    }

    #[test]
    fn compute_functions() {
        let vals: Vec<Value> = [1.0, 2.0, 3.0, 4.0].iter().map(|v| Value::Double(*v)).collect();
        assert_eq!(AggFunc::Avg.compute(&vals), Value::Double(2.5));
        assert_eq!(AggFunc::Sum.compute(&vals), Value::Double(10.0));
        assert_eq!(AggFunc::Max.compute(&vals), Value::Double(4.0));
        assert_eq!(AggFunc::Min.compute(&vals), Value::Double(1.0));
        assert_eq!(AggFunc::Count.compute(&vals), Value::Int(4));
        assert_eq!(AggFunc::FirstValue.compute(&vals), Value::Double(1.0));
        assert_eq!(AggFunc::LastValue.compute(&vals), Value::Double(4.0));
        if let Value::Double(sd) = AggFunc::Stddev.compute(&vals) {
            assert!((sd - 1.118033988749895).abs() < 1e-12);
        } else {
            panic!("stddev should be a double");
        }
    }

    #[test]
    fn compute_on_empty_window() {
        assert_eq!(AggFunc::Count.compute(&[]), Value::Int(0));
        assert_eq!(AggFunc::Avg.compute(&[]), Value::Null);
        assert_eq!(AggFunc::LastValue.compute(&[]), Value::Null);
        assert_eq!(AggFunc::Sum.compute(&[]), Value::Double(0.0));
    }

    #[test]
    fn output_schema_names_and_types() {
        let op = AggregateOp::new(
            WindowSpec::tuples(5, 2),
            vec![
                AggSpec::new("samplingtime", AggFunc::LastValue),
                AggSpec::new("rainrate", AggFunc::Avg),
                AggSpec::new("windspeed", AggFunc::Max),
                AggSpec::new("station", AggFunc::Count),
            ],
        );
        let out = op.output_schema(&schema()).unwrap();
        assert_eq!(
            out.field_names(),
            vec!["lastvalsamplingtime", "avgrainrate", "maxwindspeed", "countstation"]
        );
        assert_eq!(out.field("lastvalsamplingtime").unwrap().data_type, DataType::Timestamp);
        assert_eq!(out.field("avgrainrate").unwrap().data_type, DataType::Double);
        assert_eq!(out.field("maxwindspeed").unwrap().data_type, DataType::Double);
        assert_eq!(out.field("countstation").unwrap().data_type, DataType::Int);
    }

    #[test]
    fn validation_errors() {
        let s = schema();
        // Unknown attribute.
        let op =
            AggregateOp::new(WindowSpec::tuples(5, 2), vec![AggSpec::new("bogus", AggFunc::Avg)]);
        assert!(matches!(op.validate(&s), Err(DsmsError::UnknownAttribute { .. })));
        // Numeric function on a text attribute.
        let op =
            AggregateOp::new(WindowSpec::tuples(5, 2), vec![AggSpec::new("station", AggFunc::Avg)]);
        assert!(matches!(op.validate(&s), Err(DsmsError::BadAggregate { .. })));
        // Count on a text attribute is fine.
        let op = AggregateOp::new(
            WindowSpec::tuples(5, 2),
            vec![AggSpec::new("station", AggFunc::Count)],
        );
        assert!(op.validate(&s).is_ok());
        // Bad window.
        let op = AggregateOp::new(
            WindowSpec::tuples(0, 2),
            vec![AggSpec::new("rainrate", AggFunc::Avg)],
        );
        assert!(matches!(op.validate(&s), Err(DsmsError::InvalidGraph(_))));
        // Empty spec list.
        let op = AggregateOp::new(WindowSpec::tuples(5, 2), vec![]);
        assert!(matches!(op.validate(&s), Err(DsmsError::InvalidGraph(_))));
    }

    #[test]
    fn paper_example1_aggregation() {
        // Window size 5 advance 2; lastval(samplingtime), avg(rainrate),
        // max(windspeed) — exactly the Example 1 policy.
        let op = AggregateOp::new(
            WindowSpec::tuples(5, 2),
            vec![
                AggSpec::new("samplingtime", AggFunc::LastValue),
                AggSpec::new("rainrate", AggFunc::Avg),
                AggSpec::new("windspeed", AggFunc::Max),
            ],
        );
        let out_schema = op.output_schema(&schema()).unwrap().shared();
        let mut buffer = SlidingBuffer::new(op.window);
        let mut outputs = Vec::new();
        for i in 0..7 {
            let t = tup(i64::from(i) * 30_000, f64::from(i), f64::from(10 - i));
            outputs.extend(op.apply(&mut buffer, t, &out_schema));
        }
        assert_eq!(outputs.len(), 2);
        // First window: tuples 0..=4.
        assert_eq!(outputs[0].get("lastvalsamplingtime"), Some(&Value::Timestamp(4 * 30_000)));
        assert_eq!(outputs[0].get_f64("avgrainrate"), Some(2.0));
        assert_eq!(outputs[0].get_f64("maxwindspeed"), Some(10.0));
        // Second window: tuples 2..=6.
        assert_eq!(outputs[1].get_f64("avgrainrate"), Some(4.0));
        assert_eq!(outputs[1].get_f64("maxwindspeed"), Some(8.0));
    }
}
