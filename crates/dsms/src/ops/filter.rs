//! The filter (selection) box.

use crate::error::DsmsError;
use crate::schema::Schema;
use crate::tuple::Tuple;
use exacml_expr::{eval::eval, parse_expr, Expr};
use serde::{Deserialize, Serialize};

/// A filter operator: tuples pass through only when the condition holds.
///
/// The condition is a boolean expression over the stream's attributes
/// composed of the comparison operators `<, >, <=, >=, =, !=` and the
/// connectives `AND`, `OR`, `NOT` (Section 2.1 of the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FilterOp {
    condition: Expr,
    /// The original textual form, preserved for StreamSQL generation and
    /// policy round-tripping.
    source: String,
}

impl FilterOp {
    /// Build a filter from an already-parsed condition.
    #[must_use]
    pub fn new(condition: Expr) -> Self {
        let source = condition.to_string();
        FilterOp { condition, source }
    }

    /// Parse a filter from its textual condition.
    ///
    /// # Errors
    /// Returns [`DsmsError::BadCondition`] when the text does not parse.
    pub fn parse(condition: &str) -> Result<Self, DsmsError> {
        let expr = parse_expr(condition).map_err(|e| DsmsError::BadCondition(e.to_string()))?;
        Ok(FilterOp { condition: expr, source: condition.trim().to_string() })
    }

    /// The parsed condition.
    #[must_use]
    pub fn condition(&self) -> &Expr {
        &self.condition
    }

    /// The original condition text.
    #[must_use]
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Check that every attribute referenced by the condition exists in the
    /// input schema.
    ///
    /// # Errors
    /// Returns [`DsmsError::UnknownAttribute`] naming the missing attribute.
    pub fn validate(&self, input: &Schema) -> Result<(), DsmsError> {
        for attr in self.condition.attributes() {
            if !input.contains(&attr) {
                return Err(DsmsError::UnknownAttribute {
                    operator: "filter".into(),
                    attribute: attr,
                });
            }
        }
        Ok(())
    }

    /// Filters never change the schema.
    ///
    /// # Errors
    /// Fails when validation against the input schema fails.
    pub fn output_schema(&self, input: &Schema) -> Result<Schema, DsmsError> {
        self.validate(input)?;
        Ok(input.clone())
    }

    /// Apply the filter to one tuple, returning it when the condition holds.
    #[must_use]
    pub fn apply(&self, tuple: Tuple) -> Option<Tuple> {
        if eval(&self.condition, &tuple) {
            Some(tuple)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn weather(rain: f64) -> Tuple {
        let schema = Schema::weather_example();
        Tuple::builder(&schema)
            .set("rainrate", rain)
            .set("samplingtime", Value::Timestamp(0))
            .finish_with_defaults()
    }

    #[test]
    fn passes_matching_tuples_only() {
        let f = FilterOp::parse("rainrate > 5").unwrap();
        assert!(f.apply(weather(9.0)).is_some());
        assert!(f.apply(weather(2.0)).is_none());
        assert!(f.apply(weather(5.0)).is_none());
    }

    #[test]
    fn validates_attributes_against_schema() {
        let f = FilterOp::parse("rainrate > 5 AND bogus < 2").unwrap();
        let err = f.validate(&Schema::weather_example()).unwrap_err();
        assert!(
            matches!(err, DsmsError::UnknownAttribute { attribute, .. } if attribute == "bogus")
        );
        let f = FilterOp::parse("rainrate > 5 AND windspeed < 30").unwrap();
        f.validate(&Schema::weather_example()).unwrap();
    }

    #[test]
    fn output_schema_is_unchanged() {
        let f = FilterOp::parse("rainrate > 5").unwrap();
        let schema = Schema::weather_example();
        assert_eq!(f.output_schema(&schema).unwrap(), schema);
    }

    #[test]
    fn parse_error_is_reported() {
        assert!(matches!(FilterOp::parse("rainrate >"), Err(DsmsError::BadCondition(_))));
    }

    #[test]
    fn source_text_is_preserved() {
        let f = FilterOp::parse("  rainrate > 5 ").unwrap();
        assert_eq!(f.source(), "rainrate > 5");
    }
}
