//! The map (projection) box.

use crate::error::DsmsError;
use crate::schema::Schema;
use crate::tuple::Tuple;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A map operator: projects each tuple onto a subset of attributes
/// (Section 2.1 — "a map operator contains a set of projected attributes").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MapOp {
    attributes: Vec<String>,
}

impl MapOp {
    /// Build a map operator from attribute names. Duplicates are removed
    /// while preserving first-seen order.
    pub fn new<I, S>(attributes: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut attrs: Vec<String> = Vec::new();
        for a in attributes {
            let a = a.into();
            if !attrs.iter().any(|x| x.eq_ignore_ascii_case(&a)) {
                attrs.push(a);
            }
        }
        MapOp { attributes: attrs }
    }

    /// The projected attribute names, in output order.
    #[must_use]
    pub fn attributes(&self) -> &[String] {
        &self.attributes
    }

    /// Whether the projection keeps the given attribute.
    #[must_use]
    pub fn keeps(&self, attr: &str) -> bool {
        self.attributes.iter().any(|a| a.eq_ignore_ascii_case(attr))
    }

    /// Check that the projection is non-empty and every attribute exists in
    /// the input schema.
    ///
    /// # Errors
    /// Returns [`DsmsError::InvalidGraph`] for an empty projection and
    /// [`DsmsError::UnknownAttribute`] for a missing attribute.
    pub fn validate(&self, input: &Schema) -> Result<(), DsmsError> {
        if self.attributes.is_empty() {
            return Err(DsmsError::InvalidGraph("map operator projects no attributes".into()));
        }
        for attr in &self.attributes {
            if !input.contains(attr) {
                return Err(DsmsError::UnknownAttribute {
                    operator: "map".into(),
                    attribute: attr.clone(),
                });
            }
        }
        Ok(())
    }

    /// The projected schema.
    ///
    /// # Errors
    /// Fails when validation against the input schema fails.
    pub fn output_schema(&self, input: &Schema) -> Result<Schema, DsmsError> {
        self.validate(input)?;
        Ok(input.project(&self.attributes))
    }

    /// Apply the projection to one tuple.
    #[must_use]
    pub fn apply(&self, tuple: &Tuple, output_schema: &Arc<Schema>) -> Tuple {
        tuple.project(&self.attributes, Arc::clone(output_schema))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn projects_requested_attributes() {
        let schema = Schema::weather_example();
        let op = MapOp::new(["samplingtime", "rainrate", "windspeed"]);
        let out_schema = op.output_schema(&schema).unwrap().shared();
        assert_eq!(out_schema.field_names(), vec!["samplingtime", "rainrate", "windspeed"]);

        let t = Tuple::builder(&schema)
            .set("samplingtime", Value::Timestamp(1))
            .set("rainrate", 7.0)
            .set("windspeed", 3.0)
            .set("temperature", 33.0)
            .finish_with_defaults();
        let projected = op.apply(&t, &out_schema);
        assert_eq!(projected.schema().len(), 3);
        assert_eq!(projected.get_f64("rainrate"), Some(7.0));
        assert!(projected.get("temperature").is_none());
    }

    #[test]
    fn deduplicates_attributes() {
        let op = MapOp::new(["a", "A", "b", "a"]);
        assert_eq!(op.attributes(), &["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn keeps_is_case_insensitive() {
        let op = MapOp::new(["RainRate"]);
        assert!(op.keeps("rainrate"));
        assert!(!op.keeps("windspeed"));
    }

    #[test]
    fn rejects_empty_and_unknown() {
        let schema = Schema::weather_example();
        assert!(matches!(
            MapOp::new(Vec::<String>::new()).validate(&schema),
            Err(DsmsError::InvalidGraph(_))
        ));
        assert!(matches!(
            MapOp::new(["nosuch"]).validate(&schema),
            Err(DsmsError::UnknownAttribute { .. })
        ));
    }
}
