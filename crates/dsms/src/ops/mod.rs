//! Aurora operator boxes.
//!
//! The paper restricts itself to the three most common Aurora boxes
//! (Section 2.1): **filter** (selection), **map** (projection) and
//! **window-based aggregation**. A query graph is a DAG of these boxes; in
//! practice every graph the framework generates is a chain
//! `filter? → map? → aggregate?` (Figure 1).

pub mod aggregate;
pub mod filter;
pub mod map;

use crate::error::DsmsError;
use crate::schema::Schema;
use aggregate::AggregateOp;
use filter::FilterOp;
use map::MapOp;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One operator box of a query graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Operator {
    /// Selection on a boolean condition.
    Filter(FilterOp),
    /// Projection onto a set of attributes.
    Map(MapOp),
    /// Aggregate functions over a sliding window.
    Aggregate(AggregateOp),
}

impl Operator {
    /// Short operator-kind name for error messages and StreamSQL comments.
    #[must_use]
    pub fn kind_name(&self) -> &'static str {
        match self {
            Operator::Filter(_) => "filter",
            Operator::Map(_) => "map",
            Operator::Aggregate(_) => "aggregate",
        }
    }

    /// Validate the operator against the schema of its input stream.
    ///
    /// # Errors
    /// Returns [`DsmsError::UnknownAttribute`], [`DsmsError::InvalidGraph`] or
    /// [`DsmsError::BadAggregate`] when the operator cannot be applied.
    pub fn validate(&self, input: &Schema) -> Result<(), DsmsError> {
        match self {
            Operator::Filter(op) => op.validate(input),
            Operator::Map(op) => op.validate(input),
            Operator::Aggregate(op) => op.validate(input),
        }
    }

    /// The schema of the operator's output stream given its input schema.
    ///
    /// # Errors
    /// Fails when the operator does not validate against the input schema.
    pub fn output_schema(&self, input: &Schema) -> Result<Schema, DsmsError> {
        match self {
            Operator::Filter(op) => op.output_schema(input),
            Operator::Map(op) => op.output_schema(input),
            Operator::Aggregate(op) => op.output_schema(input),
        }
    }
}

impl fmt::Display for Operator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operator::Filter(op) => write!(f, "Filter[{}]", op.condition()),
            Operator::Map(op) => write!(f, "Map[{}]", op.attributes().join(", ")),
            Operator::Aggregate(op) => write!(f, "Aggregate[{op}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::WindowSpec;
    use aggregate::{AggFunc, AggSpec};

    #[test]
    fn kind_names() {
        let f = Operator::Filter(FilterOp::parse("a > 1").unwrap());
        let m = Operator::Map(MapOp::new(["a"]));
        let a = Operator::Aggregate(AggregateOp::new(
            WindowSpec::tuples(5, 2),
            vec![AggSpec::new("a", AggFunc::Avg)],
        ));
        assert_eq!(f.kind_name(), "filter");
        assert_eq!(m.kind_name(), "map");
        assert_eq!(a.kind_name(), "aggregate");
        assert!(f.to_string().contains("a > 1"));
        assert!(m.to_string().contains('a'));
        assert!(a.to_string().contains("avg"));
    }
}
