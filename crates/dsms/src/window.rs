//! Sliding windows.
//!
//! The paper's window-based aggregation operator is parameterised by a
//! *window type* (tuple-based or time-based), a *size* and an *advance step*
//! (Section 2.2). [`WindowSpec`] carries those parameters; [`SlidingBuffer`]
//! implements the buffering/emission logic used by the aggregation operator:
//! the first window closes once `size` tuples (or `size` time units) have
//! been collected, after which the window advances by `advance` tuples (or
//! time units) per emission.

use crate::tuple::Tuple;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// Whether the window size/advance are counted in tuples or time units
/// (milliseconds of the stream's timestamp attribute).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WindowKind {
    /// Window boundaries are counted in number of tuples.
    Tuple,
    /// Window boundaries are counted in time units of the event timestamp.
    Time,
}

impl WindowKind {
    /// The keyword used in the obligation vocabulary and StreamSQL
    /// (`tuple` / `time`).
    #[must_use]
    pub fn keyword(self) -> &'static str {
        match self {
            WindowKind::Tuple => "tuple",
            WindowKind::Time => "time",
        }
    }

    /// Parse the obligation/StreamSQL keyword.
    #[must_use]
    pub fn from_keyword(kw: &str) -> Option<WindowKind> {
        match kw.to_ascii_lowercase().as_str() {
            "tuple" | "tuples" => Some(WindowKind::Tuple),
            "time" | "seconds" | "millis" => Some(WindowKind::Time),
            _ => None,
        }
    }
}

impl fmt::Display for WindowKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// A sliding-window specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WindowSpec {
    /// Tuple-based or time-based.
    pub kind: WindowKind,
    /// Window size, in tuples or time units.
    pub size: u64,
    /// Advance step, in tuples or time units.
    pub advance: u64,
}

impl WindowSpec {
    /// A tuple-based window.
    #[must_use]
    pub fn tuples(size: u64, advance: u64) -> Self {
        WindowSpec { kind: WindowKind::Tuple, size, advance }
    }

    /// A time-based window (size and advance in timestamp units).
    #[must_use]
    pub fn time(size: u64, advance: u64) -> Self {
        WindowSpec { kind: WindowKind::Time, size, advance }
    }

    /// Validate the specification: size and advance must be positive, and
    /// the advance step may not exceed the size (that would silently skip
    /// tuples, which the paper never allows).
    ///
    /// # Errors
    /// Returns a description of the problem.
    pub fn validate(&self) -> Result<(), String> {
        if self.size == 0 {
            return Err("window size must be positive".into());
        }
        if self.advance == 0 {
            return Err("window advance step must be positive".into());
        }
        if self.advance > self.size {
            return Err(format!(
                "window advance step {} exceeds window size {}",
                self.advance, self.size
            ));
        }
        Ok(())
    }

    /// Whether a user-requested window `self` is allowed on top of a
    /// policy window `policy`: same kind, and the user window must be at
    /// least as coarse (size and advance step no smaller than the policy's)
    /// so the user never sees finer-grained data than permitted
    /// (Section 3.1, merge condition 2).
    #[must_use]
    pub fn is_coarsening_of(&self, policy: &WindowSpec) -> bool {
        self.kind == policy.kind && self.size >= policy.size && self.advance >= policy.advance
    }
}

impl fmt::Display for WindowSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} window size={} advance={}", self.kind, self.size, self.advance)
    }
}

/// The buffering state of one window-based aggregation deployment.
///
/// `push` returns every window (as a vector of tuples) that closes as a
/// consequence of the newly arrived tuple.
#[derive(Debug, Clone)]
pub struct SlidingBuffer {
    spec: WindowSpec,
    buffer: VecDeque<Tuple>,
    /// For time-based windows: the start of the currently open window.
    window_start: Option<i64>,
}

impl SlidingBuffer {
    /// New empty buffer for a window specification.
    #[must_use]
    pub fn new(spec: WindowSpec) -> Self {
        SlidingBuffer { spec, buffer: VecDeque::new(), window_start: None }
    }

    /// The window specification this buffer follows.
    #[must_use]
    pub fn spec(&self) -> &WindowSpec {
        &self.spec
    }

    /// Number of tuples currently buffered.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Add a tuple; return the contents of every window that closes.
    pub fn push(&mut self, tuple: Tuple) -> Vec<Vec<Tuple>> {
        match self.spec.kind {
            WindowKind::Tuple => self.push_tuple_based(tuple),
            WindowKind::Time => self.push_time_based(tuple),
        }
    }

    /// Add a tuple; invoke `on_close` with the contents of every window that
    /// closes, **without cloning them out of the buffer**. This is the
    /// engine's hot path; [`SlidingBuffer::push`] remains for callers that
    /// want owned windows.
    pub fn push_visit(&mut self, tuple: Tuple, mut on_close: impl FnMut(&[Tuple])) {
        match self.spec.kind {
            WindowKind::Tuple => {
                self.buffer.push_back(tuple);
                let size = self.spec.size as usize;
                let advance = self.spec.advance as usize;
                while self.buffer.len() >= size {
                    let (front, _) = self.buffer.as_slices();
                    if front.len() >= size {
                        on_close(&front[..size]);
                    } else {
                        on_close(&self.buffer.make_contiguous()[..size]);
                    }
                    for _ in 0..advance {
                        self.buffer.pop_front();
                    }
                }
            }
            // Time windows close on arbitrary subsets of the buffer; the
            // cloning path is the straightforward one and time windows are
            // far rarer than tuple windows in the workloads.
            WindowKind::Time => {
                for window in self.push_time_based(tuple) {
                    on_close(&window);
                }
            }
        }
    }

    fn push_tuple_based(&mut self, tuple: Tuple) -> Vec<Vec<Tuple>> {
        self.buffer.push_back(tuple);
        let size = self.spec.size as usize;
        let advance = self.spec.advance as usize;
        let mut closed = Vec::new();
        while self.buffer.len() >= size {
            closed.push(self.buffer.iter().take(size).cloned().collect());
            for _ in 0..advance {
                self.buffer.pop_front();
            }
        }
        closed
    }

    fn push_time_based(&mut self, tuple: Tuple) -> Vec<Vec<Tuple>> {
        let Some(ts) = tuple.event_time() else {
            // Tuples without a timestamp cannot participate in time windows;
            // they are dropped, mirroring StreamBase's handling of null
            // timestamps.
            return Vec::new();
        };
        let start = *self.window_start.get_or_insert(ts);
        let mut closed = Vec::new();
        let mut window_start = start;
        let size = self.spec.size as i64;
        let advance = self.spec.advance as i64;

        // Close every window whose end falls at or before the new event time.
        while ts >= window_start + size {
            let window_end = window_start + size;
            let contents: Vec<Tuple> = self
                .buffer
                .iter()
                .filter(|t| {
                    t.event_time().map(|e| e >= window_start && e < window_end).unwrap_or(false)
                })
                .cloned()
                .collect();
            closed.push(contents);
            window_start += advance;
            // Evict tuples that can no longer contribute to any open window.
            while let Some(front) = self.buffer.front() {
                match front.event_time() {
                    Some(e) if e < window_start => {
                        self.buffer.pop_front();
                    }
                    _ => break,
                }
            }
        }
        self.window_start = Some(window_start);
        self.buffer.push_back(tuple);
        closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::{DataType, Value};

    fn schema() -> Schema {
        Schema::from_pairs([("samplingtime", DataType::Timestamp), ("a", DataType::Double)])
    }

    fn tup(ts: i64, a: f64) -> Tuple {
        Tuple::builder(&schema())
            .set("samplingtime", Value::Timestamp(ts))
            .set("a", a)
            .finish()
            .unwrap()
    }

    fn window_values(w: &[Tuple]) -> Vec<f64> {
        w.iter().map(|t| t.get_f64("a").unwrap()).collect()
    }

    #[test]
    fn validation() {
        assert!(WindowSpec::tuples(5, 2).validate().is_ok());
        assert!(WindowSpec::tuples(0, 2).validate().is_err());
        assert!(WindowSpec::tuples(5, 0).validate().is_err());
        assert!(WindowSpec::tuples(2, 5).validate().is_err());
    }

    #[test]
    fn coarsening_rule_matches_section31() {
        let policy = WindowSpec::tuples(5, 2);
        assert!(WindowSpec::tuples(10, 2).is_coarsening_of(&policy));
        assert!(WindowSpec::tuples(5, 2).is_coarsening_of(&policy));
        assert!(!WindowSpec::tuples(4, 2).is_coarsening_of(&policy));
        assert!(!WindowSpec::tuples(10, 1).is_coarsening_of(&policy));
        assert!(!WindowSpec::time(10, 2).is_coarsening_of(&policy));
    }

    #[test]
    fn tuple_window_size5_advance2_matches_paper_example() {
        // The Example 1 window: size 5, advance 2.
        let mut buf = SlidingBuffer::new(WindowSpec::tuples(5, 2));
        let mut emissions = Vec::new();
        for i in 0..9 {
            for w in buf.push(tup(i * 30_000, f64::from(i as i32))) {
                emissions.push(window_values(&w));
            }
        }
        assert_eq!(
            emissions,
            vec![
                vec![0.0, 1.0, 2.0, 3.0, 4.0],
                vec![2.0, 3.0, 4.0, 5.0, 6.0],
                vec![4.0, 5.0, 6.0, 7.0, 8.0],
            ]
        );
    }

    #[test]
    fn tumbling_window_when_advance_equals_size() {
        let mut buf = SlidingBuffer::new(WindowSpec::tuples(3, 3));
        let mut emissions = Vec::new();
        for i in 0..7 {
            for w in buf.push(tup(i, f64::from(i as i32))) {
                emissions.push(window_values(&w));
            }
        }
        assert_eq!(emissions, vec![vec![0.0, 1.0, 2.0], vec![3.0, 4.0, 5.0]]);
        assert_eq!(buf.buffered(), 1);
    }

    #[test]
    fn example2_windows_sizes_3_4_5_step_2() {
        // The Section 3.4 attack uses three windows of sizes 3, 4, 5 with a
        // fixed advance step 2; check the sliding semantics they rely on.
        let values: Vec<f64> = (0..10).map(f64::from).collect();
        let mut sums_by_size = Vec::new();
        for size in [3u64, 4, 5] {
            let mut buf = SlidingBuffer::new(WindowSpec::tuples(size, 2));
            let mut sums = Vec::new();
            for (i, v) in values.iter().enumerate() {
                for w in buf.push(tup(i as i64, *v)) {
                    sums.push(window_values(&w).iter().sum::<f64>());
                }
            }
            sums_by_size.push(sums);
        }
        assert_eq!(sums_by_size[0][..3], [3.0, 9.0, 15.0]); // a0+a1+a2, a2+a3+a4, a4+a5+a6
        assert_eq!(sums_by_size[1][..3], [6.0, 14.0, 22.0]); // size 4
        assert_eq!(sums_by_size[2][..3], [10.0, 20.0, 30.0]); // size 5
    }

    #[test]
    fn time_window_closes_on_late_event() {
        // Window of 60 s advancing 30 s over events every 20 s.
        let mut buf = SlidingBuffer::new(WindowSpec::time(60_000, 30_000));
        let mut emissions = Vec::new();
        for i in 0..8 {
            for w in buf.push(tup(i * 20_000, f64::from(i as i32))) {
                emissions.push(window_values(&w));
            }
        }
        // First window [0, 60s) closes when the 60 s event arrives.
        assert_eq!(emissions[0], vec![0.0, 1.0, 2.0]);
        // Second window [30s, 90s) contains events at 40 s, 60 s, 80 s.
        assert_eq!(emissions[1], vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn time_window_skips_tuples_without_timestamp() {
        let schema = Schema::from_pairs([("a", DataType::Double)]);
        let t = Tuple::builder(&schema).set("a", 1.0).finish().unwrap();
        let mut buf = SlidingBuffer::new(WindowSpec::time(10, 5));
        assert!(buf.push(t).is_empty());
        assert_eq!(buf.buffered(), 0);
    }

    #[test]
    fn keyword_round_trip() {
        assert_eq!(WindowKind::from_keyword("tuple"), Some(WindowKind::Tuple));
        assert_eq!(WindowKind::from_keyword("TIME"), Some(WindowKind::Time));
        assert_eq!(WindowKind::from_keyword("bogus"), None);
        assert_eq!(WindowKind::Tuple.keyword(), "tuple");
    }
}
