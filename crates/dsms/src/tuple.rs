//! Stream tuples.
//!
//! A [`Tuple`] is one element of an append-only data stream: an ordered list
//! of [`Value`]s matching its [`Schema`]. Tuples implement the predicate
//! engine's [`Bindings`] trait so filter conditions can be evaluated against
//! them directly.

use crate::schema::Schema;
use crate::value::Value;
use exacml_expr::{Bindings, Scalar};
use std::fmt;
use std::sync::Arc;

/// One tuple of a data stream.
///
/// Both the schema and the value row live behind `Arc`s, so cloning a tuple
/// costs two reference-count increments regardless of arity — the engine
/// fans one source tuple out to many deployments and subscribers without
/// copying the payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Tuple {
    schema: Arc<Schema>,
    values: Arc<[Value]>,
}

impl Tuple {
    /// Create a tuple from a schema and values.
    ///
    /// # Errors
    /// Returns a description of the problem when the number of values does
    /// not match the schema or a value is incompatible with its field type.
    pub fn new(schema: Arc<Schema>, values: Vec<Value>) -> Result<Self, String> {
        if values.len() != schema.len() {
            return Err(format!(
                "expected {} values for schema {}, got {}",
                schema.len(),
                schema,
                values.len()
            ));
        }
        for (field, value) in schema.fields().iter().zip(values.iter()) {
            if !value.is_compatible_with(field.data_type) {
                return Err(format!(
                    "value {value} is not compatible with field '{}' of type {}",
                    field.name, field.data_type
                ));
            }
        }
        Ok(Tuple { schema, values: values.into() })
    }

    /// Create a tuple without re-validating values against the schema.
    ///
    /// For engine-internal producers (compiled operators) whose output is
    /// correct by construction; offers the derived-tuple hot path a way to
    /// skip the per-field compatibility scan. Accepts the row as anything
    /// that converts into the shared `Arc<[Value]>` form — collecting an
    /// iterator straight into `Arc<[Value]>` saves the intermediate `Vec`.
    #[must_use]
    pub(crate) fn from_trusted_parts(schema: Arc<Schema>, values: impl Into<Arc<[Value]>>) -> Self {
        let values = values.into();
        debug_assert_eq!(schema.len(), values.len());
        Tuple { schema, values }
    }

    /// Start building a tuple field-by-field.
    #[must_use]
    pub fn builder(schema: &Schema) -> TupleBuilder {
        TupleBuilder { schema: Arc::new(schema.clone()), values: vec![None; schema.len()] }
    }

    /// Start building a tuple sharing an existing `Arc<Schema>`.
    #[must_use]
    pub fn builder_shared(schema: &Arc<Schema>) -> TupleBuilder {
        TupleBuilder { schema: Arc::clone(schema), values: vec![None; schema.len()] }
    }

    /// The tuple's schema.
    #[must_use]
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// All values in schema order.
    #[must_use]
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Value of the named attribute.
    #[must_use]
    pub fn get(&self, attr: &str) -> Option<&Value> {
        self.schema.index_of(attr).map(|i| &self.values[i])
    }

    /// Numeric value of the named attribute (ints, doubles, timestamps).
    #[must_use]
    pub fn get_f64(&self, attr: &str) -> Option<f64> {
        self.get(attr).and_then(Value::as_f64)
    }

    /// Value of the tuple's timestamp attribute (the first
    /// [`crate::value::DataType::Timestamp`] field), used by time-based
    /// windows.
    #[must_use]
    pub fn event_time(&self) -> Option<i64> {
        let field = self.schema.timestamp_field()?;
        match self.get(&field.name) {
            Some(Value::Timestamp(t)) => Some(*t),
            Some(Value::Int(t)) => Some(*t),
            _ => None,
        }
    }

    /// Project the tuple onto a subset of attributes (unknown names are
    /// skipped), producing a tuple over the projected schema.
    #[must_use]
    pub fn project(&self, attrs: &[String], projected_schema: Arc<Schema>) -> Tuple {
        let values: Vec<Value> = projected_schema
            .fields()
            .iter()
            .map(|f| self.get(&f.name).cloned().unwrap_or(Value::Null))
            .collect();
        let _ = attrs; // the projected schema already encodes the attribute list
        Tuple { schema: projected_schema, values: values.into() }
    }

    /// Rough serialized size in bytes, used by the simulated network to model
    /// transfer cost.
    #[must_use]
    pub fn approx_size_bytes(&self) -> usize {
        self.values
            .iter()
            .map(|v| match v {
                Value::Text(s) => 8 + s.len(),
                _ => 8,
            })
            .sum::<usize>()
            + 16
    }
}

impl Bindings for Tuple {
    fn lookup(&self, attr: &str) -> Option<Scalar> {
        self.get(attr).and_then(Value::to_scalar)
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self
            .schema
            .fields()
            .iter()
            .zip(self.values.iter())
            .map(|(field, value)| format!("{}={}", field.name, value))
            .collect();
        write!(f, "{{{}}}", parts.join(", "))
    }
}

/// Field-by-field tuple construction.
#[derive(Debug, Clone)]
pub struct TupleBuilder {
    schema: Arc<Schema>,
    values: Vec<Option<Value>>,
}

impl TupleBuilder {
    /// Set the value of a named attribute. Unknown attributes are ignored
    /// (the builder is lenient so synthetic generators can share code across
    /// schemas); [`TupleBuilder::finish`] performs the strict check.
    #[must_use]
    pub fn set(mut self, attr: &str, value: impl Into<Value>) -> Self {
        if let Some(i) = self.schema.index_of(attr) {
            self.values[i] = Some(value.into());
        }
        self
    }

    /// Finish, requiring every field to have been set.
    ///
    /// # Errors
    /// Returns an error naming the first missing field, or a compatibility
    /// problem reported by [`Tuple::new`].
    pub fn finish(self) -> Result<Tuple, String> {
        let mut values = Vec::with_capacity(self.values.len());
        for (field, v) in self.schema.fields().iter().zip(self.values) {
            match v {
                Some(v) => values.push(v),
                None => return Err(format!("field '{}' was not set", field.name)),
            }
        }
        Tuple::new(self.schema, values)
    }

    /// Finish, filling unset fields with type defaults. Panics only if a set
    /// value is incompatible with its field, which the `set` path already
    /// prevents for the standard conversions.
    #[must_use]
    pub fn finish_with_defaults(self) -> Tuple {
        let values: Vec<Value> = self
            .schema
            .fields()
            .iter()
            .zip(self.values)
            .map(|(field, v)| v.unwrap_or_else(|| Value::default_for(field.data_type)))
            .collect();
        Tuple::new(self.schema, values).expect("default values always match the schema")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;
    use exacml_expr::parse_expr;

    fn weather_tuple(rain: f64, wind: f64) -> Tuple {
        let schema = Schema::weather_example();
        Tuple::builder(&schema)
            .set("samplingtime", Value::Timestamp(30_000))
            .set("temperature", 31.5)
            .set("humidity", 70.0)
            .set("solarradiation", 110.0)
            .set("rainrate", rain)
            .set("windspeed", wind)
            .set("winddirection", 180_i64)
            .set("barometer", 1013.0)
            .finish()
            .unwrap()
    }

    #[test]
    fn build_and_read_back() {
        let t = weather_tuple(7.5, 12.0);
        assert_eq!(t.get("rainrate"), Some(&Value::Double(7.5)));
        assert_eq!(t.get_f64("windspeed"), Some(12.0));
        assert_eq!(t.event_time(), Some(30_000));
        assert!(t.get("nosuch").is_none());
    }

    #[test]
    fn arity_and_type_checking() {
        let schema = Schema::from_pairs([("a", DataType::Int), ("b", DataType::Text)]).shared();
        assert!(Tuple::new(Arc::clone(&schema), vec![Value::Int(1)]).is_err());
        assert!(Tuple::new(
            Arc::clone(&schema),
            vec![Value::Text("x".into()), Value::Text("y".into())]
        )
        .is_err());
        assert!(Tuple::new(schema, vec![Value::Int(1), Value::Text("y".into())]).is_ok());
    }

    #[test]
    fn builder_requires_all_fields() {
        let schema = Schema::from_pairs([("a", DataType::Int), ("b", DataType::Text)]);
        let err = Tuple::builder(&schema).set("a", 1_i64).finish().unwrap_err();
        assert!(err.contains("'b'"));
        let t = Tuple::builder(&schema).set("a", 1_i64).finish_with_defaults();
        assert_eq!(t.get("b"), Some(&Value::Text(String::new())));
    }

    #[test]
    fn builder_ignores_unknown_fields() {
        let schema = Schema::from_pairs([("a", DataType::Int)]);
        let t = Tuple::builder(&schema).set("zzz", 9_i64).set("a", 1_i64).finish().unwrap();
        assert_eq!(t.get("a"), Some(&Value::Int(1)));
    }

    #[test]
    fn tuples_are_filter_bindings() {
        let t = weather_tuple(9.0, 3.0);
        let cond = parse_expr("rainrate > 5 AND windspeed < 10").unwrap();
        assert!(exacml_expr::eval::eval(&cond, &t));
        let cond = parse_expr("rainrate > 50").unwrap();
        assert!(!exacml_expr::eval::eval(&cond, &t));
    }

    #[test]
    fn projection() {
        let t = weather_tuple(1.0, 2.0);
        let attrs = vec!["samplingtime".to_string(), "rainrate".to_string()];
        let projected_schema = t.schema().project(&attrs).shared();
        let p = t.project(&attrs, projected_schema);
        assert_eq!(p.schema().len(), 2);
        assert_eq!(p.get_f64("rainrate"), Some(1.0));
        assert!(p.get("windspeed").is_none());
    }

    #[test]
    fn approx_size_accounts_for_strings() {
        let schema = Schema::from_pairs([("a", DataType::Text)]);
        let small = Tuple::builder(&schema).set("a", "x").finish().unwrap();
        let large = Tuple::builder(&schema).set("a", "x".repeat(100)).finish().unwrap();
        assert!(large.approx_size_bytes() > small.approx_size_bytes());
    }

    #[test]
    fn display_shows_fields() {
        let schema = Schema::from_pairs([("a", DataType::Int)]);
        let t = Tuple::builder(&schema).set("a", 7_i64).finish().unwrap();
        assert_eq!(t.to_string(), "{a=7}");
    }
}
