//! Typed values carried by stream tuples.

use exacml_expr::Scalar;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The data types supported by stream schemas.
///
/// These mirror the StreamSQL column types the paper's Figure 4(b) uses
/// (`timestamp`, `double`, `int`) plus `bool` and `string` for completeness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Double,
    /// Boolean.
    Bool,
    /// UTF-8 string.
    Text,
    /// Milliseconds since the Unix epoch.
    Timestamp,
}

impl DataType {
    /// StreamSQL keyword for the type.
    #[must_use]
    pub fn sql_name(self) -> &'static str {
        match self {
            DataType::Int => "int",
            DataType::Double => "double",
            DataType::Bool => "bool",
            DataType::Text => "string",
            DataType::Timestamp => "timestamp",
        }
    }

    /// Parse a StreamSQL type keyword.
    #[must_use]
    pub fn from_sql_name(name: &str) -> Option<DataType> {
        match name.to_ascii_lowercase().as_str() {
            "int" | "integer" | "long" => Some(DataType::Int),
            "double" | "float" | "real" => Some(DataType::Double),
            "bool" | "boolean" => Some(DataType::Bool),
            "string" | "text" | "varchar" => Some(DataType::Text),
            "timestamp" | "time" => Some(DataType::Timestamp),
            _ => None,
        }
    }

    /// Whether the type can participate in arithmetic aggregation
    /// (average, sum, standard deviation).
    #[must_use]
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int | DataType::Double | DataType::Timestamp)
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.sql_name())
    }
}

/// A single typed value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit IEEE float.
    Double(f64),
    /// Boolean.
    Bool(bool),
    /// UTF-8 string.
    Text(String),
    /// Milliseconds since the Unix epoch.
    Timestamp(i64),
    /// Explicit null (used for missing attributes in partially built tuples).
    Null,
}

impl Value {
    /// The data type of this value, or `None` for null.
    #[must_use]
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Int(_) => Some(DataType::Int),
            Value::Double(_) => Some(DataType::Double),
            Value::Bool(_) => Some(DataType::Bool),
            Value::Text(_) => Some(DataType::Text),
            Value::Timestamp(_) => Some(DataType::Timestamp),
            Value::Null => None,
        }
    }

    /// Whether the value is compatible with a schema field of type `ty`.
    /// Nulls are compatible with every type; integers are accepted where a
    /// double is expected (common when generating synthetic workloads).
    #[must_use]
    pub fn is_compatible_with(&self, ty: DataType) -> bool {
        matches!(
            (self, ty),
            (Value::Null, _)
                | (Value::Int(_), DataType::Int | DataType::Double | DataType::Timestamp)
                | (Value::Double(_), DataType::Double)
                | (Value::Bool(_), DataType::Bool)
                | (Value::Text(_), DataType::Text)
                | (Value::Timestamp(_), DataType::Timestamp | DataType::Int)
        )
    }

    /// Numeric view of the value (ints, doubles and timestamps).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Double(v) => Some(*v),
            Value::Timestamp(v) => Some(*v as f64),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            Value::Text(_) | Value::Null => None,
        }
    }

    /// String view of the value.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Convert into the predicate engine's scalar representation, used when a
    /// filter condition is evaluated against a tuple.
    #[must_use]
    pub fn to_scalar(&self) -> Option<Scalar> {
        match self {
            Value::Text(s) => Some(Scalar::Text(s.clone())),
            Value::Bool(b) => Some(Scalar::Number(if *b { 1.0 } else { 0.0 })),
            Value::Null => None,
            other => other.as_f64().map(Scalar::Number),
        }
    }

    /// The default value for a data type (used by
    /// `TupleBuilder::finish_with_defaults`).
    #[must_use]
    pub fn default_for(ty: DataType) -> Value {
        match ty {
            DataType::Int => Value::Int(0),
            DataType::Double => Value::Double(0.0),
            DataType::Bool => Value::Bool(false),
            DataType::Text => Value::Text(String::new()),
            DataType::Timestamp => Value::Timestamp(0),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Double(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Text(v) => write!(f, "'{v}'"),
            Value::Timestamp(v) => write!(f, "ts({v})"),
            Value::Null => f.write_str("null"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sql_names_round_trip() {
        for ty in
            [DataType::Int, DataType::Double, DataType::Bool, DataType::Text, DataType::Timestamp]
        {
            assert_eq!(DataType::from_sql_name(ty.sql_name()), Some(ty));
        }
        assert_eq!(DataType::from_sql_name("varchar"), Some(DataType::Text));
        assert_eq!(DataType::from_sql_name("blob"), None);
    }

    #[test]
    fn compatibility_rules() {
        assert!(Value::Int(3).is_compatible_with(DataType::Double));
        assert!(Value::Null.is_compatible_with(DataType::Text));
        assert!(!Value::Text("x".into()).is_compatible_with(DataType::Int));
        assert!(Value::Timestamp(5).is_compatible_with(DataType::Timestamp));
        assert!(!Value::Double(1.0).is_compatible_with(DataType::Int));
    }

    #[test]
    fn numeric_views() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Double(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Bool(true).as_f64(), Some(1.0));
        assert_eq!(Value::Text("x".into()).as_f64(), None);
        assert_eq!(Value::Null.as_f64(), None);
    }

    #[test]
    fn scalar_conversion() {
        assert_eq!(Value::Double(2.5).to_scalar(), Some(Scalar::Number(2.5)));
        assert_eq!(Value::Text("a".into()).to_scalar(), Some(Scalar::Text("a".into())));
        assert_eq!(Value::Null.to_scalar(), None);
    }

    #[test]
    fn defaults_match_types() {
        for ty in
            [DataType::Int, DataType::Double, DataType::Bool, DataType::Text, DataType::Timestamp]
        {
            assert!(Value::default_for(ty).is_compatible_with(ty));
        }
    }

    #[test]
    fn from_conversions() {
        assert_eq!(Value::from(3_i64), Value::Int(3));
        assert_eq!(Value::from(2.0_f64), Value::Double(2.0));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("hi"), Value::Text("hi".into()));
    }
}
