//! Deploy-time compiled operators.
//!
//! `Schema::index_of` is a case-insensitive linear scan; the interpreted
//! operators ([`crate::ops`]) perform it once per attribute per tuple, which
//! dominates the per-tuple cost on wide schemas. At deploy time the engine
//! compiles each operator of a validated chain into an index-resolved form so
//! the hot path touches values by position only:
//!
//! * filter conditions become [`CompiledPredicate`] trees whose leaves carry
//!   the value-row index of their attribute;
//! * map projections become a plain `Vec<usize>` of source positions;
//! * aggregation specs carry the source position of their input attribute.
//!
//! Compiled evaluation is semantically identical to the interpreted path
//! (missing attributes and kind mismatches evaluate to `false`), which the
//! unit tests below and the engine's own tests assert.

use crate::error::DsmsError;
use crate::ops::aggregate::AggregateOp;
use crate::ops::filter::FilterOp;
use crate::ops::map::MapOp;
use crate::ops::Operator;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;
use crate::window::SlidingBuffer;
use exacml_expr::{CmpOp, Expr, Scalar};
use std::sync::Arc;

/// What one subscriber still needs applied *after* a shared operator chain:
/// an optional residual predicate and an optional projection, both expressed
/// against the shared deployment's **output** schema.
///
/// This is the fan-out half of multi-query sharing: when many subscribers'
/// query graphs agree on a common core (typically the policy-mandated
/// chain), the engine deploys the core once and attaches each subscriber
/// through a [`ResidualSpec`] compiled into its resolved form, so the
/// per-tuple cost of the core is paid once regardless of subscriber count.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ResidualSpec {
    /// Filter condition evaluated on each core output tuple; `None` passes
    /// everything through.
    pub predicate: Option<Expr>,
    /// Attributes (of the core output schema) the subscriber sees, in
    /// order; `None` delivers the full core output row.
    pub projection: Option<Vec<String>>,
}

impl ResidualSpec {
    /// A residual that forwards every core output tuple unchanged.
    #[must_use]
    pub fn passthrough() -> Self {
        ResidualSpec::default()
    }

    /// Whether this residual does nothing (no predicate, no projection).
    #[must_use]
    pub fn is_passthrough(&self) -> bool {
        self.predicate.is_none() && self.projection.is_none()
    }
}

/// A [`ResidualSpec`] with attribute names resolved against the shared
/// deployment's output schema, applied per subscriber at fan-out time.
#[derive(Debug)]
pub struct CompiledResidual {
    predicate: Option<CompiledPredicate>,
    /// Source positions + projected schema, mirroring a compiled map box.
    mask: Option<(Vec<usize>, Arc<Schema>)>,
}

impl CompiledResidual {
    /// Resolve a residual spec against the core output schema. Predicate
    /// leaves naming missing attributes compile to constant `false` (the
    /// interpreted filter semantics); a projection naming a missing
    /// attribute is an error, exactly like deploying a map box would be.
    pub(crate) fn compile(
        spec: &ResidualSpec,
        schema: &Schema,
    ) -> Result<CompiledResidual, DsmsError> {
        let predicate = spec.predicate.as_ref().map(|e| CompiledPredicate::compile(e, schema));
        let mask = match &spec.projection {
            Some(attrs) => {
                let map = MapOp::new(attrs.clone());
                let projected = map.output_schema(schema)?.shared();
                let indices = attrs
                    .iter()
                    .map(|attr| {
                        schema
                            .index_of(attr)
                            .expect("output_schema validated every projected attribute")
                    })
                    .collect();
                Some((indices, projected))
            }
            None => None,
        };
        Ok(CompiledResidual { predicate, mask })
    }

    /// The subscriber-visible schema when the residual projects; `None`
    /// means the subscriber sees the core output schema unchanged.
    pub(crate) fn masked_schema(&self) -> Option<&Arc<Schema>> {
        self.mask.as_ref().map(|(_, schema)| schema)
    }

    /// Apply the residual to one core output tuple: `None` when the
    /// predicate rejects it, otherwise the (possibly projected) tuple.
    pub(crate) fn apply(&self, tuple: &Tuple) -> Option<Tuple> {
        if let Some(pred) = &self.predicate {
            if !pred.matches(tuple.values()) {
                return None;
            }
        }
        match &self.mask {
            Some((indices, schema)) => {
                let values: Arc<[Value]> =
                    indices.iter().map(|&i| tuple.values()[i].clone()).collect();
                Some(Tuple::from_trusted_parts(Arc::clone(schema), values))
            }
            None => Some(tuple.clone()),
        }
    }
}

/// A filter condition with every attribute resolved to a value-row index.
#[derive(Debug, Clone)]
pub(crate) enum CompiledPredicate {
    /// Constant truth (also the compilation of a leaf over a missing
    /// attribute, which the interpreted evaluator treats as `false`).
    Const(bool),
    /// A leaf comparison `values[index] op literal`.
    Cmp {
        index: usize,
        op: CmpOp,
        literal: Scalar,
    },
    Not(Box<CompiledPredicate>),
    And(Box<CompiledPredicate>, Box<CompiledPredicate>),
    Or(Box<CompiledPredicate>, Box<CompiledPredicate>),
}

impl CompiledPredicate {
    /// Resolve every attribute of `expr` against `input`. Leaves naming an
    /// attribute the schema lacks compile to constant `false`, matching
    /// `eval_simple`'s missing-attribute semantics.
    pub(crate) fn compile(expr: &Expr, input: &Schema) -> CompiledPredicate {
        match expr {
            Expr::True => CompiledPredicate::Const(true),
            Expr::False => CompiledPredicate::Const(false),
            Expr::Simple(s) => match input.index_of(&s.attr) {
                Some(index) => CompiledPredicate::Cmp { index, op: s.op, literal: s.value.clone() },
                None => CompiledPredicate::Const(false),
            },
            Expr::Not(inner) => {
                CompiledPredicate::Not(Box::new(CompiledPredicate::compile(inner, input)))
            }
            Expr::And(a, b) => CompiledPredicate::And(
                Box::new(CompiledPredicate::compile(a, input)),
                Box::new(CompiledPredicate::compile(b, input)),
            ),
            Expr::Or(a, b) => CompiledPredicate::Or(
                Box::new(CompiledPredicate::compile(a, input)),
                Box::new(CompiledPredicate::compile(b, input)),
            ),
        }
    }

    /// Evaluate against a value row, without name lookups or allocation.
    pub(crate) fn matches(&self, values: &[Value]) -> bool {
        match self {
            CompiledPredicate::Const(b) => *b,
            CompiledPredicate::Cmp { index, op, literal } => {
                compare_value(&values[*index], *op, literal)
            }
            CompiledPredicate::Not(inner) => !inner.matches(values),
            CompiledPredicate::And(a, b) => a.matches(values) && b.matches(values),
            CompiledPredicate::Or(a, b) => a.matches(values) || b.matches(values),
        }
    }
}

/// Compare a tuple value against a literal, mirroring
/// `Value::to_scalar` + `exacml_expr::eval::compare` without the string
/// clone `to_scalar` pays for text values.
fn compare_value(value: &Value, op: CmpOp, literal: &Scalar) -> bool {
    match literal {
        Scalar::Number(n) => match value.as_f64() {
            Some(x) => x.partial_cmp(n).is_some_and(|ord| op.apply_ord(ord)),
            None => false,
        },
        Scalar::Text(s) => match value.as_str() {
            Some(x) => op.apply_ord(x.cmp(s.as_str())),
            None => false,
        },
    }
}

/// One operator of a deployed chain, with attribute resolution done.
#[derive(Debug, Clone)]
pub(crate) enum CompiledOp {
    Filter(CompiledPredicate),
    /// Source positions of the projected attributes, in output order.
    Map(Vec<usize>),
    /// The aggregation operator plus the source position of each spec's
    /// input attribute.
    Aggregate {
        op: AggregateOp,
        source_indices: Vec<usize>,
    },
}

/// A compiled stage: the operator plus its output schema and (for
/// aggregations) the window buffer.
#[derive(Debug, Clone)]
pub(crate) struct CompiledStage {
    pub(crate) op: CompiledOp,
    pub(crate) output_schema: Arc<Schema>,
    pub(crate) window: Option<SlidingBuffer>,
}

impl CompiledStage {
    /// Compile one validated operator against its input schema.
    ///
    /// The caller must have run `Operator::validate` (deploy does): every
    /// attribute the operator names is assumed present in `input`.
    pub(crate) fn compile(
        operator: &Operator,
        input: &Schema,
        output_schema: Arc<Schema>,
    ) -> CompiledStage {
        let op = match operator {
            Operator::Filter(f) => compile_filter(f, input),
            Operator::Map(m) => compile_map(m, input),
            Operator::Aggregate(a) => compile_aggregate(a, input),
        };
        let window = match operator {
            Operator::Aggregate(a) => Some(SlidingBuffer::new(a.window)),
            _ => None,
        };
        CompiledStage { op, output_schema, window }
    }

    /// Run one input tuple through the stage, appending derived tuples to
    /// `out`. Filters forward the tuple untouched (a cheap `Arc` clone);
    /// maps build a new row by position; aggregations feed the window buffer
    /// and emit one tuple per closed window.
    pub(crate) fn process(&mut self, tuple: &Tuple, out: &mut Vec<Tuple>) {
        match &self.op {
            CompiledOp::Filter(pred) => {
                if pred.matches(tuple.values()) {
                    out.push(tuple.clone());
                }
            }
            CompiledOp::Map(indices) => {
                let values: Arc<[Value]> =
                    indices.iter().map(|&i| tuple.values()[i].clone()).collect();
                out.push(Tuple::from_trusted_parts(Arc::clone(&self.output_schema), values));
            }
            CompiledOp::Aggregate { op, source_indices } => {
                let buffer =
                    self.window.as_mut().expect("aggregate stages always carry a window buffer");
                let output_schema = &self.output_schema;
                buffer.push_visit(tuple.clone(), |window| {
                    let values: Arc<[Value]> = op
                        .specs
                        .iter()
                        .zip(source_indices.iter())
                        .map(|(spec, &idx)| compute_indexed(spec.function, window, idx))
                        .collect();
                    out.push(Tuple::from_trusted_parts(Arc::clone(output_schema), values));
                });
            }
        }
    }
}

/// Compute one aggregate over a window column addressed by position, without
/// materializing the column. Mirrors `AggFunc::compute` applied to the fully
/// collected column (which the compiled-vs-interpreted tests assert).
fn compute_indexed(func: crate::ops::aggregate::AggFunc, window: &[Tuple], idx: usize) -> Value {
    use crate::ops::aggregate::AggFunc;
    let column = || window.iter().map(|t| &t.values()[idx]);
    match func {
        AggFunc::Count => Value::Int(window.len() as i64),
        AggFunc::LastValue => window.last().map_or(Value::Null, |t| t.values()[idx].clone()),
        AggFunc::FirstValue => window.first().map_or(Value::Null, |t| t.values()[idx].clone()),
        AggFunc::Sum => Value::Double(column().filter_map(Value::as_f64).sum::<f64>()),
        AggFunc::Avg => {
            let (mut sum, mut n) = (0.0f64, 0u64);
            for x in column().filter_map(Value::as_f64) {
                sum += x;
                n += 1;
            }
            if n == 0 {
                Value::Null
            } else {
                Value::Double(sum / n as f64)
            }
        }
        AggFunc::Stddev => {
            let (mut sum, mut n) = (0.0f64, 0u64);
            for x in column().filter_map(Value::as_f64) {
                sum += x;
                n += 1;
            }
            if n == 0 {
                return Value::Null;
            }
            let mean = sum / n as f64;
            let var =
                column().filter_map(Value::as_f64).map(|x| (x - mean) * (x - mean)).sum::<f64>()
                    / n as f64;
            Value::Double(var.sqrt())
        }
        AggFunc::Max => best_indexed(window, idx, |a, b| a > b),
        AggFunc::Min => best_indexed(window, idx, |a, b| a < b),
    }
}

/// The extremal numeric value of a window column; falls back to the first
/// value for non-numeric columns — identical to the interpreted `best_by`.
fn best_indexed(window: &[Tuple], idx: usize, better: impl Fn(f64, f64) -> bool) -> Value {
    let mut best: Option<(f64, &Value)> = None;
    for t in window {
        let v = &t.values()[idx];
        if let Some(x) = v.as_f64() {
            match best {
                Some((cur, _)) if !better(x, cur) => {}
                _ => best = Some((x, v)),
            }
        }
    }
    match best {
        Some((_, v)) => v.clone(),
        None => window.first().map_or(Value::Null, |t| t.values()[idx].clone()),
    }
}

/// Fuse adjacent stages of a compiled chain. Two rewrites, both pure index
/// composition:
///
/// * `Map → Map` becomes one `Map` whose positions are composed;
/// * `Map → Aggregate(tuple window)` becomes one `Aggregate` reading the
///   map's source positions directly, so the hot path never materializes the
///   projected intermediate tuple (the window buffers the upstream tuple
///   instead — *tuple*-based window arithmetic depends only on the tuple
///   count, which projection does not change).
///
/// `Map → Aggregate(time window)` is deliberately **not** fused: time
/// windows read the tuple's timestamp field, and a projection may remove or
/// reorder it — tuples without a timestamp are dropped from time windows, so
/// buffering the (timestamp-bearing) upstream tuple would change which
/// windows close.
pub(crate) fn fuse_stages(stages: Vec<CompiledStage>) -> Vec<CompiledStage> {
    let mut fused: Vec<CompiledStage> = Vec::with_capacity(stages.len());
    for stage in stages {
        if let Some(prev) = fused.last() {
            if let CompiledOp::Map(map_indices) = &prev.op {
                match &stage.op {
                    CompiledOp::Map(indices) => {
                        let composed = indices.iter().map(|&i| map_indices[i]).collect();
                        fused.pop();
                        fused.push(CompiledStage {
                            op: CompiledOp::Map(composed),
                            output_schema: stage.output_schema,
                            window: None,
                        });
                        continue;
                    }
                    CompiledOp::Aggregate { op, source_indices }
                        if op.window.kind == crate::window::WindowKind::Tuple =>
                    {
                        let composed = source_indices.iter().map(|&i| map_indices[i]).collect();
                        let op = op.clone();
                        fused.pop();
                        fused.push(CompiledStage {
                            op: CompiledOp::Aggregate { op, source_indices: composed },
                            output_schema: stage.output_schema,
                            window: stage.window,
                        });
                        continue;
                    }
                    _ => {}
                }
            }
        }
        fused.push(stage);
    }
    fused
}

fn compile_filter(op: &FilterOp, input: &Schema) -> CompiledOp {
    CompiledOp::Filter(CompiledPredicate::compile(op.condition(), input))
}

fn compile_map(op: &MapOp, input: &Schema) -> CompiledOp {
    let indices = op.attributes().iter().filter_map(|attr| input.index_of(attr)).collect();
    CompiledOp::Map(indices)
}

fn compile_aggregate(op: &AggregateOp, input: &Schema) -> CompiledOp {
    let source_indices = op
        .specs
        .iter()
        .map(|spec| {
            input
                .index_of(&spec.attribute)
                .expect("aggregate specs are validated against the input schema before compiling")
        })
        .collect();
    CompiledOp::Aggregate { op: op.clone(), source_indices }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;
    use exacml_expr::{eval::eval, parse_expr};

    fn schema() -> Schema {
        Schema::from_pairs([("a", DataType::Double), ("b", DataType::Int), ("s", DataType::Text)])
    }

    fn tuple(a: f64, b: i64, s: &str) -> Tuple {
        Tuple::builder(&schema()).set("a", a).set("b", b).set("s", s).finish().unwrap()
    }

    #[test]
    fn compiled_predicate_agrees_with_interpreted_eval() {
        let conditions = [
            "a > 1",
            "a > 1 AND b < 5",
            "NOT (a > 1)",
            "a > 1 OR s = 'x'",
            "s != 'x'",
            "TRUE",
            "FALSE",
            "NOT (missing > 3)",
            "missing > 3",
            "s > 2",   // kind mismatch: text value vs number literal
            "a = 'x'", // kind mismatch: number value vs text literal
        ];
        let tuples = [tuple(0.5, 3, "x"), tuple(2.0, 7, "y"), tuple(1.0, 5, "")];
        for cond in conditions {
            let expr = parse_expr(cond).unwrap();
            let compiled = CompiledPredicate::compile(&expr, &schema());
            for t in &tuples {
                assert_eq!(
                    compiled.matches(t.values()),
                    eval(&expr, t),
                    "compiled and interpreted evaluation disagree on `{cond}` for {t}"
                );
            }
        }
    }

    #[test]
    fn compiled_map_projects_by_position() {
        let op = MapOp::new(["s", "a"]);
        let out_schema = op.output_schema(&schema()).unwrap().shared();
        let mut stage =
            CompiledStage::compile(&Operator::Map(op), &schema(), Arc::clone(&out_schema));
        let mut out = Vec::new();
        stage.process(&tuple(1.5, 2, "hello"), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].schema().field_names(), vec!["s", "a"]);
        assert_eq!(out[0].get("s").unwrap().as_str(), Some("hello"));
        assert_eq!(out[0].get_f64("a"), Some(1.5));
    }

    #[test]
    fn residual_applies_predicate_then_projection() {
        let spec = ResidualSpec {
            predicate: Some(parse_expr("a > 1").unwrap()),
            projection: Some(vec!["s".to_string(), "b".to_string()]),
        };
        let residual = CompiledResidual::compile(&spec, &schema()).unwrap();
        assert_eq!(residual.masked_schema().unwrap().field_names(), vec!["s", "b"]);

        assert!(residual.apply(&tuple(0.5, 3, "x")).is_none());
        let out = residual.apply(&tuple(2.0, 7, "y")).unwrap();
        assert_eq!(out.schema().field_names(), vec!["s", "b"]);
        assert_eq!(out.get("s").unwrap().as_str(), Some("y"));
        assert_eq!(out.get_f64("b"), Some(7.0));
    }

    #[test]
    fn passthrough_residual_forwards_unchanged() {
        let spec = ResidualSpec::passthrough();
        assert!(spec.is_passthrough());
        let residual = CompiledResidual::compile(&spec, &schema()).unwrap();
        assert!(residual.masked_schema().is_none());
        let t = tuple(1.0, 2, "z");
        assert_eq!(residual.apply(&t), Some(t));
    }

    #[test]
    fn residual_projection_of_missing_attribute_is_an_error() {
        let spec = ResidualSpec { predicate: None, projection: Some(vec!["bogus".to_string()]) };
        assert!(matches!(
            CompiledResidual::compile(&spec, &schema()),
            Err(DsmsError::UnknownAttribute { .. })
        ));
        // A *predicate* over a missing attribute compiles to constant false,
        // matching the interpreted filter semantics.
        let spec =
            ResidualSpec { predicate: Some(parse_expr("bogus > 1").unwrap()), projection: None };
        let residual = CompiledResidual::compile(&spec, &schema()).unwrap();
        assert!(residual.apply(&tuple(9.0, 9, "x")).is_none());
    }

    #[test]
    fn compiled_aggregate_matches_interpreted_apply() {
        use crate::ops::aggregate::{AggFunc, AggSpec};
        use crate::window::WindowSpec;
        let op = AggregateOp::new(
            WindowSpec::tuples(3, 2),
            vec![AggSpec::new("a", AggFunc::Avg), AggSpec::new("b", AggFunc::Max)],
        );
        let out_schema = op.output_schema(&schema()).unwrap().shared();

        let mut compiled = CompiledStage::compile(
            &Operator::Aggregate(op.clone()),
            &schema(),
            Arc::clone(&out_schema),
        );
        let mut interpreted_buffer = SlidingBuffer::new(op.window);

        for i in 0..8 {
            let t = tuple(f64::from(i), i64::from(i * 2), "x");
            let mut compiled_out = Vec::new();
            compiled.process(&t, &mut compiled_out);
            let interpreted_out = op.apply(&mut interpreted_buffer, t, &out_schema);
            assert_eq!(compiled_out, interpreted_out, "divergence at tuple {i}");
        }
    }
}
