//! Error types for the stream engine.

use std::fmt;

/// Errors produced by the DSMS.
#[derive(Debug, Clone, PartialEq)]
pub enum DsmsError {
    /// A stream with this name is already registered.
    StreamAlreadyExists(String),
    /// No stream with this name is registered.
    UnknownStream(String),
    /// No deployment / output stream with this handle exists.
    UnknownHandle(String),
    /// A tuple did not match the schema of the stream it was pushed to.
    SchemaMismatch { stream: String, detail: String },
    /// A query graph referenced an attribute that does not exist in the
    /// upstream schema.
    UnknownAttribute { operator: String, attribute: String },
    /// A query graph is structurally invalid (e.g. empty, or its window
    /// specification is degenerate).
    InvalidGraph(String),
    /// A filter condition could not be parsed.
    BadCondition(String),
    /// The StreamSQL text could not be parsed.
    StreamSqlParse { line: usize, detail: String },
    /// An aggregate function cannot be applied to the attribute's type.
    BadAggregate { attribute: String, function: String, detail: String },
}

impl fmt::Display for DsmsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DsmsError::StreamAlreadyExists(name) => write!(f, "stream '{name}' already exists"),
            DsmsError::UnknownStream(name) => write!(f, "unknown stream '{name}'"),
            DsmsError::UnknownHandle(uri) => write!(f, "unknown stream handle '{uri}'"),
            DsmsError::SchemaMismatch { stream, detail } => {
                write!(f, "tuple does not match schema of stream '{stream}': {detail}")
            }
            DsmsError::UnknownAttribute { operator, attribute } => {
                write!(f, "operator {operator} references unknown attribute '{attribute}'")
            }
            DsmsError::InvalidGraph(detail) => write!(f, "invalid query graph: {detail}"),
            DsmsError::BadCondition(detail) => write!(f, "bad filter condition: {detail}"),
            DsmsError::StreamSqlParse { line, detail } => {
                write!(f, "StreamSQL parse error at line {line}: {detail}")
            }
            DsmsError::BadAggregate { attribute, function, detail } => {
                write!(f, "cannot apply {function} to attribute '{attribute}': {detail}")
            }
        }
    }
}

impl std::error::Error for DsmsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_context() {
        assert!(DsmsError::UnknownStream("weather".into()).to_string().contains("weather"));
        assert!(DsmsError::StreamSqlParse { line: 3, detail: "x".into() }
            .to_string()
            .contains("line 3"));
        assert!(DsmsError::UnknownAttribute { operator: "map".into(), attribute: "rr".into() }
            .to_string()
            .contains("rr"));
    }
}
