//! The continuous-query engine.
//!
//! This is the part of StreamBase the eXACML+ framework talks to: it
//! registers input streams, accepts query-graph deployments (returning a
//! [`StreamHandle`] for the derived output stream), pushes source tuples
//! through every deployed graph and delivers derived tuples to subscribers,
//! and withdraws deployments when the policy layer revokes them
//! (Section 3.3 — "whenever a policy has been removed or modified, all query
//! graphs that are spawned by the policy are immediately withdrawn").
//!
//! # Concurrency
//!
//! The engine is internally synchronized and every operation takes `&self`:
//! callers share one engine behind an `Arc` with no external lock. State is
//! **sharded by input stream** — each registered stream owns a `Shard`
//! whose deployments are protected by their own mutex — so pushes to
//! different streams proceed in parallel and only pushes to the *same*
//! stream serialize (they must: window buffers are order-sensitive).
//! Cross-shard indexes (handle → deployment, deployment → stream) live in
//! `RwLock`ed maps that pushes only ever read-lock briefly, and counters are
//! atomics. [`StreamEngine::push_batch`] amortizes the shard lookup and lock
//! acquisition over a whole batch of tuples.
//!
//! Per-tuple work is allocation-light: operator chains are compiled at
//! deploy time (`compiled.rs`) so attribute positions are resolved
//! once, and [`Tuple`] rows are `Arc`-backed so fan-out to N deployments and
//! M subscribers costs reference-count bumps, not copies.

use crate::catalog::{StreamCatalog, StreamHandle};
use crate::compiled::{CompiledResidual, CompiledStage, ResidualSpec};
use crate::error::DsmsError;
use crate::graph::QueryGraph;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crossbeam::channel::{unbounded, Receiver, Sender};
use exacml_telemetry::{Metric, Stage, Telemetry};
use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Identifier of one deployed query graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DeploymentId(pub u64);

impl std::fmt::Display for DeploymentId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deployment-{}", self.0)
    }
}

/// Public description of a successful deployment.
#[derive(Debug, Clone)]
pub struct Deployment {
    /// Engine-assigned identifier.
    pub id: DeploymentId,
    /// Handle (URI) of the derived output stream.
    pub output_handle: StreamHandle,
    /// Schema of the derived output stream.
    pub output_schema: Arc<Schema>,
}

/// Counters exposed for the evaluation harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Source tuples pushed into the engine.
    pub tuples_ingested: u64,
    /// Derived tuples emitted to output streams.
    pub tuples_emitted: u64,
    /// Query graphs deployed over the engine's lifetime.
    pub deployments_created: u64,
    /// Query graphs withdrawn over the engine's lifetime.
    pub deployments_withdrawn: u64,
}

/// One subscriber of a deployment's output: the handle it subscribed
/// through, the delivery channel, and the per-grant residual (if the handle
/// was attached with one) applied to each tuple before sending.
struct SubscriberSlot {
    handle: StreamHandle,
    tx: Sender<Tuple>,
    residual: Option<Arc<CompiledResidual>>,
}

impl SubscriberSlot {
    /// Deliver one core output tuple through the residual, by move.
    fn send(&self, out: Tuple) {
        match &self.residual {
            None => {
                let _ = self.tx.send(out);
            }
            Some(residual) => {
                if let Some(t) = residual.apply(&out) {
                    let _ = self.tx.send(t);
                }
            }
        }
    }
}

/// Runtime state of one deployed query graph.
struct DeploymentState {
    id: DeploymentId,
    stages: Vec<CompiledStage>,
    output_handle: StreamHandle,
    output_schema: Arc<Schema>,
    /// Per-grant handles attached via [`StreamEngine::attach_handle`]
    /// (the primary `output_handle` is not in this list).
    attached: Vec<StreamHandle>,
    subscribers: Vec<SubscriberSlot>,
    emitted: u64,
    /// Reusable stage buffers: the per-tuple working set allocates nothing
    /// once the deployment has warmed up.
    scratch_current: Vec<Tuple>,
    scratch_next: Vec<Tuple>,
}

impl DeploymentState {
    /// Push one source tuple through the compiled chain, deliver the derived
    /// tuples to the live subscribers, and return how many were emitted.
    ///
    /// Disconnected receivers are dropped *before* any tuple is cloned for
    /// them, and the last subscriber receives each tuple by move rather than
    /// by clone. Subscribers attached with a residual see the tuple filtered
    /// and projected by it; the shared chain above runs once either way.
    fn process_and_fan_out(&mut self, tuple: &Tuple) -> usize {
        let mut current = std::mem::take(&mut self.scratch_current);
        let mut next = std::mem::take(&mut self.scratch_next);
        current.clear();
        next.clear();
        current.push(tuple.clone());
        for stage in &mut self.stages {
            if current.is_empty() {
                break;
            }
            next.clear();
            for t in &current {
                stage.process(t, &mut next);
            }
            std::mem::swap(&mut current, &mut next);
        }
        let emitted = current.len();
        self.emitted += emitted as u64;

        if emitted > 0 {
            self.subscribers.retain(|slot| !slot.tx.is_disconnected());
            if let Some(fan_out) = self.subscribers.len().checked_sub(1) {
                for out in current.drain(..) {
                    for slot in &self.subscribers[..fan_out] {
                        slot.send(out.clone());
                    }
                    self.subscribers[fan_out].send(out);
                }
            }
        }
        self.scratch_current = current;
        self.scratch_next = next;
        emitted
    }
}

/// Per-stream shard: the stream's schema plus the deployments attached to
/// it, in deployment order.
struct Shard {
    schema: Arc<Schema>,
    deployments: Mutex<Vec<DeploymentState>>,
}

/// What one live handle resolves to: the deployment behind it plus the
/// residual applied to that handle's subscribers (per-grant handles attached
/// to a shared deployment carry one; primary handles never do).
struct HandleEntry {
    id: DeploymentId,
    residual: Option<Arc<CompiledResidual>>,
}

/// The Aurora-model continuous query engine (see the module docs for the
/// sharded locking structure).
pub struct StreamEngine {
    catalog: StreamCatalog,
    shards: RwLock<HashMap<String, Arc<Shard>>>,
    /// Deployment → input stream, the authority on deployment liveness.
    routes: RwLock<HashMap<DeploymentId, String>>,
    by_handle: RwLock<HashMap<StreamHandle, HandleEntry>>,
    next_id: AtomicU64,
    tuples_ingested: AtomicU64,
    tuples_emitted: AtomicU64,
    deployments_created: AtomicU64,
    deployments_withdrawn: AtomicU64,
    telemetry: Arc<Telemetry>,
}

impl Default for StreamEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamEngine {
    /// A new engine whose handles are minted under the host name `dsms`.
    #[must_use]
    pub fn new() -> Self {
        Self::with_host("dsms")
    }

    /// A new engine with an explicit host name (used in handle URIs).
    #[must_use]
    pub fn with_host(host: &str) -> Self {
        Self::with_telemetry(host, Arc::new(Telemetry::new()))
    }

    /// A new engine recording into a caller-supplied telemetry registry, so
    /// an enclosing server and its engine share one set of counters and
    /// stage histograms.
    #[must_use]
    pub fn with_telemetry(host: &str, telemetry: Arc<Telemetry>) -> Self {
        StreamEngine {
            catalog: StreamCatalog::new(host),
            shards: RwLock::new(HashMap::new()),
            routes: RwLock::new(HashMap::new()),
            by_handle: RwLock::new(HashMap::new()),
            next_id: AtomicU64::new(0),
            tuples_ingested: AtomicU64::new(0),
            tuples_emitted: AtomicU64::new(0),
            deployments_created: AtomicU64::new(0),
            deployments_withdrawn: AtomicU64::new(0),
            telemetry,
        }
    }

    /// The engine's catalog (stream registry and handle registry).
    #[must_use]
    pub fn catalog(&self) -> &StreamCatalog {
        &self.catalog
    }

    /// The telemetry registry the engine records into.
    #[must_use]
    pub fn telemetry_handle(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// Engine-wide counters.
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            tuples_ingested: self.tuples_ingested.load(Ordering::Relaxed),
            tuples_emitted: self.tuples_emitted.load(Ordering::Relaxed),
            deployments_created: self.deployments_created.load(Ordering::Relaxed),
            deployments_withdrawn: self.deployments_withdrawn.load(Ordering::Relaxed),
        }
    }

    /// Register an input stream.
    ///
    /// # Errors
    /// Fails when the name is taken or the schema invalid.
    pub fn register_stream(&self, name: &str, schema: Schema) -> Result<(), DsmsError> {
        let shared = self.catalog.register(name, schema)?;
        self.shards.write().insert(
            name.to_string(),
            Arc::new(Shard { schema: shared, deployments: Mutex::new(Vec::new()) }),
        );
        Ok(())
    }

    /// Schema of a registered input stream.
    ///
    /// # Errors
    /// Fails when the stream is unknown.
    pub fn stream_schema(&self, name: &str) -> Result<Arc<Schema>, DsmsError> {
        self.catalog.schema_of(name)
    }

    /// The shard of a registered stream.
    fn shard(&self, stream: &str) -> Result<Arc<Shard>, DsmsError> {
        self.shards
            .read()
            .get(stream)
            .cloned()
            .ok_or_else(|| DsmsError::UnknownStream(stream.to_string()))
    }

    /// Deploy a query graph. Validates the graph against the input stream's
    /// schema, compiles the operator chain (resolving attribute names to
    /// value-row positions once) and mints an output-stream handle.
    ///
    /// # Errors
    /// Fails when the input stream is unknown or the graph invalid.
    pub fn deploy(&self, graph: &QueryGraph) -> Result<Deployment, DsmsError> {
        let shard = self.shard(&graph.stream)?;

        // Validate the chain, record every intermediate schema, compile each
        // operator against its input schema, then fuse adjacent stages
        // (map→map, map→aggregate) so the hot path skips intermediate rows.
        let mut stages = Vec::with_capacity(graph.nodes.len());
        let mut current: Schema = (*shard.schema).clone();
        for node in &graph.nodes {
            let out = node.operator.output_schema(&current)?;
            let out_shared = out.clone().shared();
            stages.push(CompiledStage::compile(&node.operator, &current, out_shared));
            current = out;
        }
        let stages = crate::compiled::fuse_stages(stages);
        let output_schema = current.shared();

        let id = DeploymentId(self.next_id.fetch_add(1, Ordering::Relaxed));
        let output_handle = self.catalog.mint_handle(format!("{id}"));

        let state = DeploymentState {
            id,
            stages,
            output_handle: output_handle.clone(),
            output_schema: Arc::clone(&output_schema),
            attached: Vec::new(),
            subscribers: Vec::new(),
            emitted: 0,
            scratch_current: Vec::new(),
            scratch_next: Vec::new(),
        };
        self.routes.write().insert(id, graph.stream.clone());
        self.by_handle.write().insert(output_handle.clone(), HandleEntry { id, residual: None });
        shard.deployments.lock().push(state);
        self.deployments_created.fetch_add(1, Ordering::Relaxed);

        Ok(Deployment { id, output_handle, output_schema })
    }

    /// Withdraw a deployment by id, releasing its primary output handle
    /// **and** every per-grant handle attached to it. Subscribers see their
    /// channel disconnect.
    ///
    /// # Errors
    /// Fails when the deployment is unknown.
    pub fn withdraw(&self, id: DeploymentId) -> Result<(), DsmsError> {
        let stream = self
            .routes
            .write()
            .remove(&id)
            .ok_or_else(|| DsmsError::UnknownHandle(format!("{id}")))?;
        let shard = self.shard(&stream)?;
        let state = {
            let mut deployments = shard.deployments.lock();
            let index = deployments
                .iter()
                .position(|d| d.id == id)
                .expect("routes and shard deployments are kept consistent");
            deployments.remove(index)
        };
        let mut by_handle = self.by_handle.write();
        self.catalog.release_handle(&state.output_handle);
        by_handle.remove(&state.output_handle);
        for handle in &state.attached {
            self.catalog.release_handle(handle);
            by_handle.remove(handle);
        }
        self.deployments_withdrawn.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Withdraw the deployment behind an output-stream handle.
    ///
    /// # Errors
    /// Fails when the handle is unknown.
    pub fn withdraw_handle(&self, handle: &StreamHandle) -> Result<(), DsmsError> {
        let id = self
            .by_handle
            .read()
            .get(handle)
            .map(|entry| entry.id)
            .ok_or_else(|| DsmsError::UnknownHandle(handle.uri().to_string()))?;
        self.withdraw(id)
    }

    /// Attach a per-grant handle to a live deployment, optionally carrying a
    /// residual (predicate + projection over the deployment's *output*
    /// schema) applied to that handle's subscribers at fan-out. This is how
    /// many grants share one compiled operator chain: the chain runs once
    /// per source tuple, each attached handle pays only its residual.
    ///
    /// The returned handle behaves like a deployment's own handle for
    /// [`StreamEngine::subscribe`] / [`StreamEngine::output_schema`] /
    /// liveness, and is released by [`StreamEngine::retire_handle`] (one
    /// grant ends) or [`StreamEngine::withdraw`] (the whole plan ends).
    ///
    /// # Errors
    /// Fails when the deployment is unknown or the residual projection names
    /// an attribute the output schema lacks.
    pub fn attach_handle(
        &self,
        id: DeploymentId,
        residual: Option<&ResidualSpec>,
    ) -> Result<StreamHandle, DsmsError> {
        self.attach_handle_inner(id, residual, None)
    }

    /// Recovery variant of [`StreamEngine::attach_handle`]: attach under a
    /// specific, pre-existing handle URI instead of minting a fresh serial.
    /// A recovering server replays each journaled grant with the exact
    /// handle its consumer still holds — minting arithmetic cannot reproduce
    /// pre-crash serials once released grants have been pruned from the
    /// journal, so the URI itself is the replay contract.
    ///
    /// # Errors
    /// As [`StreamEngine::attach_handle`], plus when the URI is already live.
    pub fn attach_handle_as(
        &self,
        id: DeploymentId,
        residual: Option<&ResidualSpec>,
        handle: StreamHandle,
    ) -> Result<StreamHandle, DsmsError> {
        self.attach_handle_inner(id, residual, Some(handle))
    }

    fn attach_handle_inner(
        &self,
        id: DeploymentId,
        residual: Option<&ResidualSpec>,
        adopt: Option<StreamHandle>,
    ) -> Result<StreamHandle, DsmsError> {
        let unknown = || DsmsError::UnknownHandle(format!("{id}"));
        let stream = self.routes.read().get(&id).cloned().ok_or_else(unknown)?;
        let shard = self.shard(&stream)?;
        let mut deployments = shard.deployments.lock();
        let state = deployments.iter_mut().find(|d| d.id == id).ok_or_else(unknown)?;
        let compiled = match residual {
            Some(spec) if !spec.is_passthrough() => {
                Some(Arc::new(CompiledResidual::compile(spec, &state.output_schema)?))
            }
            _ => None,
        };
        let handle = match adopt {
            Some(handle) => {
                self.catalog.adopt_handle(handle.clone(), format!("{id}"))?;
                handle
            }
            None => self.catalog.mint_handle(format!("{id}")),
        };
        state.attached.push(handle.clone());
        self.by_handle.write().insert(handle.clone(), HandleEntry { id, residual: compiled });
        Ok(handle)
    }

    /// Retire one per-grant handle attached via
    /// [`StreamEngine::attach_handle`]: the handle dies, its subscribers
    /// disconnect, and the shared deployment (and every other attached
    /// handle) lives on. Returns the deployment the handle belonged to so
    /// callers tracking plan refcounts can decide whether to
    /// [`StreamEngine::withdraw`] it.
    ///
    /// # Errors
    /// Fails when the handle is unknown or is a deployment's *primary*
    /// handle (primary handles die only with the deployment).
    pub fn retire_handle(&self, handle: &StreamHandle) -> Result<DeploymentId, DsmsError> {
        let unknown = || DsmsError::UnknownHandle(handle.uri().to_string());
        let id = self.by_handle.read().get(handle).map(|entry| entry.id).ok_or_else(unknown)?;
        let stream = self.routes.read().get(&id).cloned().ok_or_else(unknown)?;
        let shard = self.shard(&stream)?;
        let mut deployments = shard.deployments.lock();
        let state = deployments.iter_mut().find(|d| d.id == id).ok_or_else(unknown)?;
        let index = state.attached.iter().position(|h| h == handle).ok_or_else(|| {
            DsmsError::UnknownHandle(format!("{} is a primary handle", handle.uri()))
        })?;
        state.attached.remove(index);
        state.subscribers.retain(|slot| slot.handle != *handle);
        self.catalog.release_handle(handle);
        self.by_handle.write().remove(handle);
        Ok(id)
    }

    /// Subscribe to the derived tuples of an output stream. Subscribing
    /// through a per-grant handle attaches that handle's residual to the
    /// returned channel.
    ///
    /// # Errors
    /// Fails when the handle does not correspond to a live deployment.
    pub fn subscribe(&self, handle: &StreamHandle) -> Result<Receiver<Tuple>, DsmsError> {
        let unknown = || DsmsError::UnknownHandle(handle.uri().to_string());
        let (id, residual) = {
            let by_handle = self.by_handle.read();
            let entry = by_handle.get(handle).ok_or_else(unknown)?;
            (entry.id, entry.residual.clone())
        };
        let stream = self.routes.read().get(&id).cloned().ok_or_else(unknown)?;
        let shard = self.shard(&stream)?;
        let mut deployments = shard.deployments.lock();
        let state = deployments.iter_mut().find(|d| d.id == id).ok_or_else(unknown)?;
        let (tx, rx) = unbounded();
        state.subscribers.push(SubscriberSlot { handle: handle.clone(), tx, residual });
        Ok(rx)
    }

    /// Schema of the output stream behind a handle: the deployment's output
    /// schema, narrowed by the handle's residual projection when it has one.
    ///
    /// # Errors
    /// Fails when the handle is unknown.
    pub fn output_schema(&self, handle: &StreamHandle) -> Result<Arc<Schema>, DsmsError> {
        let unknown = || DsmsError::UnknownHandle(handle.uri().to_string());
        let (id, residual) = {
            let by_handle = self.by_handle.read();
            let entry = by_handle.get(handle).ok_or_else(unknown)?;
            (entry.id, entry.residual.clone())
        };
        if let Some(masked) = residual.as_deref().and_then(CompiledResidual::masked_schema) {
            return Ok(Arc::clone(masked));
        }
        let stream = self.routes.read().get(&id).cloned().ok_or_else(unknown)?;
        let shard = self.shard(&stream)?;
        let deployments = shard.deployments.lock();
        let state = deployments.iter().find(|d| d.id == id).ok_or_else(unknown)?;
        Ok(Arc::clone(&state.output_schema))
    }

    /// Check one tuple against the shard's schema.
    fn check_schema(shard: &Shard, stream: &str, tuple: &Tuple) -> Result<(), DsmsError> {
        if Arc::ptr_eq(tuple.schema(), &shard.schema)
            || tuple.schema().as_ref() == shard.schema.as_ref()
        {
            return Ok(());
        }
        Err(DsmsError::SchemaMismatch {
            stream: stream.to_string(),
            detail: format!(
                "tuple schema {} differs from stream schema {}",
                tuple.schema(),
                shard.schema
            ),
        })
    }

    /// Run a slice of tuples through every deployment of a locked shard;
    /// returns the number of derived tuples emitted.
    fn process_locked(&self, deployments: &mut [DeploymentState], tuples: &[Tuple]) -> usize {
        // Telemetry is batch-grained on purpose: one wall-clock read pair
        // and four sharded-counter adds per ingest call, not per tuple, so
        // the instrumented hot path stays within the perf-gated 0.95× of
        // the uninstrumented one.
        let started = self.telemetry.is_enabled().then(Instant::now);
        let mut emitted = 0usize;
        for state in deployments {
            for tuple in tuples {
                emitted += state.process_and_fan_out(tuple);
            }
        }
        self.tuples_ingested.fetch_add(tuples.len() as u64, Ordering::Relaxed);
        self.tuples_emitted.fetch_add(emitted as u64, Ordering::Relaxed);
        if let Some(started) = started {
            self.telemetry.record(Stage::Ingest, started.elapsed());
            self.telemetry.incr(Metric::BatchesIngested);
            self.telemetry.add(Metric::TuplesIngested, tuples.len() as u64);
            self.telemetry.add(Metric::TuplesDelivered, emitted as u64);
        }
        emitted
    }

    /// Push one source tuple into a registered stream. The tuple is run
    /// through every deployment on that stream; derived tuples are delivered
    /// to subscribers. Returns the total number of derived tuples emitted.
    ///
    /// Pushes to *different* streams run concurrently; pushes to the same
    /// stream serialize on the stream's shard. When feeding many tuples at
    /// once, prefer [`StreamEngine::push_batch`].
    ///
    /// # Errors
    /// Fails when the stream is unknown or the tuple does not match its
    /// schema.
    pub fn push(&self, stream: &str, tuple: Tuple) -> Result<usize, DsmsError> {
        let shard = self.shard(stream)?;
        Self::check_schema(&shard, stream, &tuple)?;
        let mut deployments = shard.deployments.lock();
        Ok(self.process_locked(&mut deployments, std::slice::from_ref(&tuple)))
    }

    /// Push a batch of source tuples into a registered stream, resolving the
    /// shard and taking its lock once for the whole batch. The batch is
    /// validated up front: on a schema mismatch nothing is ingested.
    /// Returns the total number of derived tuples emitted.
    ///
    /// # Errors
    /// Fails when the stream is unknown or any tuple does not match its
    /// schema.
    pub fn push_batch(
        &self,
        stream: &str,
        tuples: impl IntoIterator<Item = Tuple>,
    ) -> Result<usize, DsmsError> {
        let shard = self.shard(stream)?;
        let batch: Vec<Tuple> = tuples.into_iter().collect();
        // Batches usually share one `Arc<Schema>` (builders reuse it); after
        // the first deep check, pointer-identical schemas are skipped.
        let mut validated: Option<&Arc<Schema>> = None;
        for tuple in &batch {
            if validated.is_some_and(|prev| Arc::ptr_eq(prev, tuple.schema())) {
                continue;
            }
            Self::check_schema(&shard, stream, tuple)?;
            validated = Some(tuple.schema());
        }
        if batch.is_empty() {
            return Ok(0);
        }
        let mut deployments = shard.deployments.lock();
        Ok(self.process_locked(&mut deployments, &batch))
    }

    /// Recovery hook: resume deployment-id minting at `next`, and advance
    /// handle serials at least as far (no-op when the counters are already
    /// past it). Handle serials are **not** in lockstep with deployment ids
    /// — [`StreamEngine::attach_handle`] mints per-grant handles without a
    /// deploy — but they never lag them (every deploy mints its primary
    /// handle), so a recovering server calls this with a recorded deployment
    /// id right before re-deploying (re-minting the same id), and calls
    /// [`StreamEngine::resume_handle_serial_at`] with each recorded handle
    /// serial right before re-attaching (re-minting the same handle URI).
    /// Advancing past everything ever minted guarantees a released handle
    /// can never come back to life pointing at a different deployment.
    pub fn resume_ids_at(&self, next: u64) {
        self.next_id.fetch_max(next, Ordering::Relaxed);
        self.catalog.resume_serial_at(next);
    }

    /// Recovery hook: resume handle-serial minting at `next` without
    /// touching the deployment-id counter (see
    /// [`StreamEngine::resume_ids_at`]). The next minted handle gets serial
    /// `next` — callers pass the serial a handle held before the crash to
    /// re-mint the identical URI.
    pub fn resume_handle_serial_at(&self, next: u64) {
        self.catalog.resume_serial_at(next);
    }

    /// Number of live deployments.
    #[must_use]
    pub fn deployment_count(&self) -> usize {
        self.routes.read().len()
    }

    /// Number of live deployments attached to one input stream.
    #[must_use]
    pub fn deployments_on(&self, stream: &str) -> usize {
        self.shards.read().get(stream).map_or(0, |s| s.deployments.lock().len())
    }

    /// Total derived tuples emitted by one deployment so far.
    #[must_use]
    pub fn emitted_by(&self, id: DeploymentId) -> Option<u64> {
        let stream = self.routes.read().get(&id).cloned()?;
        let shard = self.shards.read().get(&stream).cloned()?;
        let deployments = shard.deployments.lock();
        deployments.iter().find(|d| d.id == id).map(|d| d.emitted)
    }

    /// The input stream a deployment is attached to.
    #[must_use]
    pub fn stream_of(&self, id: DeploymentId) -> Option<String> {
        self.routes.read().get(&id).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::QueryGraphBuilder;
    use crate::ops::aggregate::{AggFunc, AggSpec};
    use crate::value::Value;
    use crate::window::WindowSpec;

    fn weather_tuple(schema: &Schema, i: i64, rain: f64, wind: f64) -> Tuple {
        Tuple::builder(schema)
            .set("samplingtime", Value::Timestamp(i * 30_000))
            .set("rainrate", rain)
            .set("windspeed", wind)
            .finish_with_defaults()
    }

    fn engine_with_weather() -> (StreamEngine, Schema) {
        let engine = StreamEngine::new();
        let schema = Schema::weather_example();
        engine.register_stream("weather", schema.clone()).unwrap();
        (engine, schema)
    }

    #[test]
    fn deploy_subscribe_push_full_example1_pipeline() {
        let (engine, schema) = engine_with_weather();
        let graph = QueryGraphBuilder::on_stream("weather")
            .filter_str("rainrate > 5")
            .unwrap()
            .map(["samplingtime", "rainrate", "windspeed"])
            .aggregate(
                WindowSpec::tuples(5, 2),
                vec![
                    AggSpec::new("samplingtime", AggFunc::LastValue),
                    AggSpec::new("rainrate", AggFunc::Avg),
                    AggSpec::new("windspeed", AggFunc::Max),
                ],
            )
            .build();
        let deployment = engine.deploy(&graph).unwrap();
        assert_eq!(
            deployment.output_schema.field_names(),
            vec!["lastvalsamplingtime", "avgrainrate", "maxwindspeed"]
        );
        let rx = engine.subscribe(&deployment.output_handle).unwrap();

        // 10 tuples, rain alternates below/above the threshold; only the 6
        // above-threshold tuples reach the window.
        for i in 0..10 {
            let rain = if i % 2 == 0 { 10.0 + f64::from(i) } else { 1.0 };
            engine
                .push("weather", weather_tuple(&schema, i64::from(i), rain, f64::from(i)))
                .unwrap();
        }
        // 5 tuples pass the filter at i=0,2,4,6,8 → one window closes.
        let out: Vec<Tuple> = rx.try_iter().collect();
        assert_eq!(out.len(), 1);
        let avg = out[0].get_f64("avgrainrate").unwrap();
        assert!((avg - (10.0 + 12.0 + 14.0 + 16.0 + 18.0) / 5.0).abs() < 1e-9);
        assert_eq!(out[0].get_f64("maxwindspeed"), Some(8.0));
    }

    #[test]
    fn identity_deployment_passes_tuples_through() {
        let (engine, schema) = engine_with_weather();
        let d = engine.deploy(&QueryGraph::identity("weather")).unwrap();
        let rx = engine.subscribe(&d.output_handle).unwrap();
        engine.push("weather", weather_tuple(&schema, 0, 3.0, 1.0)).unwrap();
        assert_eq!(rx.try_iter().count(), 1);
    }

    #[test]
    fn multiple_deployments_on_one_stream() {
        let (engine, schema) = engine_with_weather();
        let g1 =
            QueryGraphBuilder::on_stream("weather").filter_str("rainrate > 5").unwrap().build();
        let g2 =
            QueryGraphBuilder::on_stream("weather").filter_str("rainrate > 100").unwrap().build();
        let d1 = engine.deploy(&g1).unwrap();
        let d2 = engine.deploy(&g2).unwrap();
        let rx1 = engine.subscribe(&d1.output_handle).unwrap();
        let rx2 = engine.subscribe(&d2.output_handle).unwrap();
        assert_eq!(engine.deployments_on("weather"), 2);

        let emitted = engine.push("weather", weather_tuple(&schema, 0, 10.0, 0.0)).unwrap();
        assert_eq!(emitted, 1);
        assert_eq!(rx1.try_iter().count(), 1);
        assert_eq!(rx2.try_iter().count(), 0);
    }

    #[test]
    fn withdraw_disconnects_subscribers_and_releases_handle() {
        let (engine, schema) = engine_with_weather();
        let d = engine.deploy(&QueryGraph::identity("weather")).unwrap();
        let rx = engine.subscribe(&d.output_handle).unwrap();
        assert!(engine.catalog().handle_is_live(&d.output_handle));

        engine.withdraw(d.id).unwrap();
        assert!(!engine.catalog().handle_is_live(&d.output_handle));
        assert_eq!(engine.deployment_count(), 0);
        // Pushing more data does not reach the old subscriber.
        engine.push("weather", weather_tuple(&schema, 0, 1.0, 1.0)).unwrap();
        assert!(rx.try_recv().is_err());
        // Subscribing to the withdrawn handle now fails.
        assert!(matches!(engine.subscribe(&d.output_handle), Err(DsmsError::UnknownHandle(_))));
        // Double-withdraw fails.
        assert!(engine.withdraw(d.id).is_err());
    }

    #[test]
    fn withdraw_by_handle() {
        let (engine, _schema) = engine_with_weather();
        let d = engine.deploy(&QueryGraph::identity("weather")).unwrap();
        engine.withdraw_handle(&d.output_handle).unwrap();
        assert_eq!(engine.deployment_count(), 0);
        assert!(engine.withdraw_handle(&d.output_handle).is_err());
    }

    #[test]
    fn push_checks_stream_and_schema() {
        let (engine, _schema) = engine_with_weather();
        let other = Schema::gps_example();
        let t = Tuple::builder(&other).finish_with_defaults();
        assert!(matches!(engine.push("nosuch", t.clone()), Err(DsmsError::UnknownStream(_))));
        assert!(matches!(engine.push("weather", t), Err(DsmsError::SchemaMismatch { .. })));
    }

    #[test]
    fn deploy_rejects_unknown_stream_and_bad_graph() {
        let (engine, _schema) = engine_with_weather();
        let g = QueryGraphBuilder::on_stream("nosuch").build();
        assert!(matches!(engine.deploy(&g), Err(DsmsError::UnknownStream(_))));
        let g = QueryGraphBuilder::on_stream("weather").map(["bogus"]).build();
        assert!(matches!(engine.deploy(&g), Err(DsmsError::UnknownAttribute { .. })));
    }

    #[test]
    fn stats_are_accumulated() {
        let (engine, schema) = engine_with_weather();
        let d = engine.deploy(&QueryGraph::identity("weather")).unwrap();
        engine.push("weather", weather_tuple(&schema, 0, 1.0, 1.0)).unwrap();
        engine.push("weather", weather_tuple(&schema, 1, 2.0, 1.0)).unwrap();
        engine.withdraw(d.id).unwrap();
        let stats = engine.stats();
        assert_eq!(stats.tuples_ingested, 2);
        assert_eq!(stats.tuples_emitted, 2);
        assert_eq!(stats.deployments_created, 1);
        assert_eq!(stats.deployments_withdrawn, 1);
        assert_eq!(engine.emitted_by(d.id), None);
    }

    #[test]
    fn telemetry_reconciles_with_engine_stats() {
        let (engine, schema) = engine_with_weather();
        let d = engine.deploy(&QueryGraph::identity("weather")).unwrap();
        let _rx = engine.subscribe(&d.output_handle).unwrap();
        engine.push("weather", weather_tuple(&schema, 0, 1.0, 1.0)).unwrap();
        let batch: Vec<Tuple> = (1..=4).map(|i| weather_tuple(&schema, i, 2.0, 1.0)).collect();
        engine.push_batch("weather", batch).unwrap();

        let snapshot = engine.telemetry_handle().snapshot();
        assert_eq!(snapshot.counter(Metric::TuplesIngested), engine.stats().tuples_ingested);
        assert_eq!(snapshot.counter(Metric::TuplesDelivered), engine.stats().tuples_emitted);
        assert_eq!(snapshot.counter(Metric::BatchesIngested), 2);
        assert_eq!(snapshot.stage(Stage::Ingest).unwrap().count, 2);

        // A disabled registry leaves the hot path silent but functional.
        engine.telemetry_handle().set_enabled(false);
        engine.push("weather", weather_tuple(&schema, 9, 1.0, 1.0)).unwrap();
        assert_eq!(engine.telemetry_handle().counter(Metric::BatchesIngested), 2);
        assert_eq!(engine.stats().tuples_ingested, 6);
    }

    #[test]
    fn output_schema_lookup_by_handle() {
        let (engine, _schema) = engine_with_weather();
        let g = QueryGraphBuilder::on_stream("weather").map(["rainrate"]).build();
        let d = engine.deploy(&g).unwrap();
        let s = engine.output_schema(&d.output_handle).unwrap();
        assert_eq!(s.field_names(), vec!["rainrate"]);
        assert!(engine.output_schema(&StreamHandle::from_uri("exacml://x/streams/999")).is_err());
    }

    #[test]
    fn push_batch_matches_single_pushes() {
        let (engine, schema) = engine_with_weather();
        let g = QueryGraphBuilder::on_stream("weather").filter_str("rainrate > 5").unwrap().build();
        let d = engine.deploy(&g).unwrap();
        let rx = engine.subscribe(&d.output_handle).unwrap();

        let batch: Vec<Tuple> = (0..20)
            .map(|i| weather_tuple(&schema, i, if i % 2 == 0 { 10.0 } else { 1.0 }, 0.0))
            .collect();
        let emitted = engine.push_batch("weather", batch).unwrap();
        assert_eq!(emitted, 10);
        assert_eq!(rx.try_iter().count(), 10);
        assert_eq!(engine.stats().tuples_ingested, 20);
        assert_eq!(engine.emitted_by(d.id), Some(10));

        // Empty batches are a no-op.
        assert_eq!(engine.push_batch("weather", Vec::new()).unwrap(), 0);
        // A batch with a mismatched tuple is rejected atomically.
        let bad = Tuple::builder(&Schema::gps_example()).finish_with_defaults();
        assert!(engine.push_batch("weather", vec![bad]).is_err());
        assert_eq!(engine.stats().tuples_ingested, 20);
    }

    #[test]
    fn pushes_to_distinct_streams_run_from_many_threads() {
        let engine = Arc::new(StreamEngine::new());
        let schema = Schema::weather_example();
        for name in ["s0", "s1", "s2", "s3"] {
            engine.register_stream(name, schema.clone()).unwrap();
            engine
                .deploy(
                    &QueryGraphBuilder::on_stream(name).filter_str("rainrate > 5").unwrap().build(),
                )
                .unwrap();
        }
        const PER_THREAD: usize = 500;
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let engine = Arc::clone(&engine);
                let schema = schema.clone();
                std::thread::spawn(move || {
                    let stream = format!("s{i}");
                    for j in 0..PER_THREAD {
                        engine.push(&stream, weather_tuple(&schema, j as i64, 10.0, 0.0)).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let stats = engine.stats();
        assert_eq!(stats.tuples_ingested, (4 * PER_THREAD) as u64);
        assert_eq!(stats.tuples_emitted, (4 * PER_THREAD) as u64);
    }

    #[test]
    fn time_window_after_timestampless_projection_emits_nothing() {
        // A map that projects away the timestamp feeds a time window: the
        // projected tuples carry no event time, so time windows never close
        // (the interpreted/seed semantics). The map→aggregate fusion must
        // not resurrect the upstream timestamp.
        let (engine, schema) = engine_with_weather();
        let graph = QueryGraphBuilder::on_stream("weather")
            .map(["rainrate"])
            .aggregate(
                WindowSpec::time(60_000, 30_000),
                vec![AggSpec::new("rainrate", AggFunc::Avg)],
            )
            .build();
        let d = engine.deploy(&graph).unwrap();
        let rx = engine.subscribe(&d.output_handle).unwrap();
        for i in 0..20 {
            engine.push("weather", weather_tuple(&schema, i, 10.0, 1.0)).unwrap();
        }
        assert_eq!(rx.try_iter().count(), 0);
        assert_eq!(engine.emitted_by(d.id), Some(0));

        // The same window fed with the timestamp kept does close.
        let graph = QueryGraphBuilder::on_stream("weather")
            .map(["samplingtime", "rainrate"])
            .aggregate(
                WindowSpec::time(60_000, 30_000),
                vec![AggSpec::new("rainrate", AggFunc::Avg)],
            )
            .build();
        let d = engine.deploy(&graph).unwrap();
        let rx = engine.subscribe(&d.output_handle).unwrap();
        for i in 0..20 {
            engine.push("weather", weather_tuple(&schema, i, 10.0, 1.0)).unwrap();
        }
        assert!(rx.try_iter().count() > 0);
    }

    #[test]
    fn attached_handles_share_one_deployment_with_residuals() {
        use crate::compiled::ResidualSpec;
        use exacml_expr::parse_expr;

        let (engine, schema) = engine_with_weather();
        // One shared core: the policy filter, deployed once.
        let core =
            QueryGraphBuilder::on_stream("weather").filter_str("rainrate > 5").unwrap().build();
        let d = engine.deploy(&core).unwrap();

        // Grant A: tighter predicate + projection. Grant B: passthrough.
        let spec_a = ResidualSpec {
            predicate: Some(parse_expr("windspeed > 3").unwrap()),
            projection: Some(vec!["samplingtime".to_string(), "rainrate".to_string()]),
        };
        let ha = engine.attach_handle(d.id, Some(&spec_a)).unwrap();
        let hb = engine.attach_handle(d.id, None).unwrap();
        assert_ne!(ha, hb);
        assert_ne!(ha, d.output_handle);
        assert_eq!(engine.deployment_count(), 1);
        assert_eq!(
            engine.output_schema(&ha).unwrap().field_names(),
            vec!["samplingtime", "rainrate"]
        );
        assert_eq!(engine.output_schema(&hb).unwrap(), d.output_schema);

        let rx_a = engine.subscribe(&ha).unwrap();
        let rx_b = engine.subscribe(&hb).unwrap();
        engine.push("weather", weather_tuple(&schema, 0, 10.0, 1.0)).unwrap(); // A filtered out
        engine.push("weather", weather_tuple(&schema, 1, 10.0, 9.0)).unwrap(); // both
        engine.push("weather", weather_tuple(&schema, 2, 1.0, 9.0)).unwrap(); // core drops

        let a: Vec<Tuple> = rx_a.try_iter().collect();
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].schema().field_names(), vec!["samplingtime", "rainrate"]);
        assert_eq!(rx_b.try_iter().count(), 2);
        // The shared chain ran once per tuple regardless of subscribers.
        assert_eq!(engine.emitted_by(d.id), Some(2));
    }

    #[test]
    fn retire_handle_keeps_the_shared_deployment_alive() {
        let (engine, schema) = engine_with_weather();
        let d = engine.deploy(&QueryGraph::identity("weather")).unwrap();
        let ha = engine.attach_handle(d.id, None).unwrap();
        let hb = engine.attach_handle(d.id, None).unwrap();
        let rx_a = engine.subscribe(&ha).unwrap();
        let rx_b = engine.subscribe(&hb).unwrap();

        assert_eq!(engine.retire_handle(&ha).unwrap(), d.id);
        assert!(!engine.catalog().handle_is_live(&ha));
        assert!(engine.catalog().handle_is_live(&hb));
        assert_eq!(engine.deployment_count(), 1);
        // The retired grant's subscriber is disconnected, the other lives.
        engine.push("weather", weather_tuple(&schema, 0, 1.0, 1.0)).unwrap();
        assert!(rx_a.try_recv().is_err());
        assert_eq!(rx_b.try_iter().count(), 1);

        // Retiring again, retiring the primary, or a foreign handle fails.
        assert!(engine.retire_handle(&ha).is_err());
        assert!(engine.retire_handle(&d.output_handle).is_err());
        assert!(engine.deployment_count() == 1);

        // Withdrawing the deployment releases every remaining handle.
        engine.withdraw(d.id).unwrap();
        assert!(!engine.catalog().handle_is_live(&hb));
        assert!(!engine.catalog().handle_is_live(&d.output_handle));
        assert!(matches!(engine.subscribe(&hb), Err(DsmsError::UnknownHandle(_))));
    }

    #[test]
    fn attach_handle_validates_deployment_and_residual() {
        use crate::compiled::ResidualSpec;
        let (engine, _schema) = engine_with_weather();
        let d = engine.deploy(&QueryGraph::identity("weather")).unwrap();
        assert!(engine.attach_handle(DeploymentId(999), None).is_err());
        let bad = ResidualSpec { predicate: None, projection: Some(vec!["bogus".to_string()]) };
        assert!(matches!(
            engine.attach_handle(d.id, Some(&bad)),
            Err(DsmsError::UnknownAttribute { .. })
        ));
        // A failed attach leaks nothing: withdraw still releases cleanly.
        engine.withdraw(d.id).unwrap();
        assert_eq!(engine.catalog().live_handles(), 0);
    }

    #[test]
    fn attach_handle_as_adopts_the_exact_uri() {
        let (engine, schema) = engine_with_weather();
        let d = engine.deploy(&QueryGraph::identity("weather")).unwrap();
        let recovered = StreamHandle::from_uri("exacml://dsms-host/streams/700");
        let handle = engine.attach_handle_as(d.id, None, recovered.clone()).unwrap();
        assert_eq!(handle, recovered);
        assert!(engine.catalog().handle_is_live(&recovered));
        let rx = engine.subscribe(&recovered).unwrap();
        engine.push("weather", weather_tuple(&schema, 0, 1.0, 1.0)).unwrap();
        assert_eq!(rx.try_iter().count(), 1);
        // Adopting a URI that is already live is an error, not a hijack.
        assert!(engine.attach_handle_as(d.id, None, recovered.clone()).is_err());
        assert!(engine.attach_handle_as(d.id, None, d.output_handle.clone()).is_err());
        // The counter resumes past the recovered serial, so fresh mints
        // never collide with adopted URIs.
        engine.resume_handle_serial_at(recovered.serial().unwrap() + 1);
        let fresh = engine.attach_handle(d.id, None).unwrap();
        assert_eq!(fresh.serial().unwrap(), 701);
    }

    #[test]
    fn dead_subscribers_are_pruned_on_next_push() {
        let (engine, schema) = engine_with_weather();
        let d = engine.deploy(&QueryGraph::identity("weather")).unwrap();
        let rx1 = engine.subscribe(&d.output_handle).unwrap();
        let rx2 = engine.subscribe(&d.output_handle).unwrap();
        drop(rx2);
        engine.push("weather", weather_tuple(&schema, 0, 1.0, 1.0)).unwrap();
        assert_eq!(rx1.try_iter().count(), 1);
        // The engine still delivers to live subscribers after pruning.
        engine.push("weather", weather_tuple(&schema, 1, 2.0, 2.0)).unwrap();
        assert_eq!(rx1.try_iter().count(), 1);
    }
}
