//! The continuous-query engine.
//!
//! This is the part of StreamBase the eXACML+ framework talks to: it
//! registers input streams, accepts query-graph deployments (returning a
//! [`StreamHandle`] for the derived output stream), pushes source tuples
//! through every deployed graph and delivers derived tuples to subscribers,
//! and withdraws deployments when the policy layer revokes them
//! (Section 3.3 — "whenever a policy has been removed or modified, all query
//! graphs that are spawned by the policy are immediately withdrawn").

use crate::catalog::{StreamCatalog, StreamHandle};
use crate::error::DsmsError;
use crate::graph::QueryGraph;
use crate::ops::Operator;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::window::SlidingBuffer;
use crossbeam::channel::{unbounded, Receiver, Sender};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Identifier of one deployed query graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DeploymentId(pub u64);

impl std::fmt::Display for DeploymentId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deployment-{}", self.0)
    }
}

/// Public description of a successful deployment.
#[derive(Debug, Clone)]
pub struct Deployment {
    /// Engine-assigned identifier.
    pub id: DeploymentId,
    /// Handle (URI) of the derived output stream.
    pub output_handle: StreamHandle,
    /// Schema of the derived output stream.
    pub output_schema: Arc<Schema>,
}

/// Counters exposed for the evaluation harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Source tuples pushed into the engine.
    pub tuples_ingested: u64,
    /// Derived tuples emitted to output streams.
    pub tuples_emitted: u64,
    /// Query graphs deployed over the engine's lifetime.
    pub deployments_created: u64,
    /// Query graphs withdrawn over the engine's lifetime.
    pub deployments_withdrawn: u64,
}

/// Per-stage runtime state of a deployment.
struct Stage {
    operator: Operator,
    output_schema: Arc<Schema>,
    window: Option<SlidingBuffer>,
}

/// Runtime state of one deployed query graph.
struct DeploymentState {
    graph: QueryGraph,
    stages: Vec<Stage>,
    output_handle: StreamHandle,
    output_schema: Arc<Schema>,
    subscribers: Vec<Sender<Tuple>>,
    emitted: u64,
}

impl DeploymentState {
    /// Push one source tuple through the operator chain; returns the derived
    /// tuples emitted by the final stage.
    fn process(&mut self, tuple: Tuple) -> Vec<Tuple> {
        let mut current = vec![tuple];
        for stage in &mut self.stages {
            if current.is_empty() {
                break;
            }
            let mut next = Vec::with_capacity(current.len());
            for t in current {
                match &stage.operator {
                    Operator::Filter(op) => {
                        if let Some(t) = op.apply(t) {
                            next.push(t);
                        }
                    }
                    Operator::Map(op) => next.push(op.apply(&t, &stage.output_schema)),
                    Operator::Aggregate(op) => {
                        let buffer = stage
                            .window
                            .as_mut()
                            .expect("aggregate stages always carry a window buffer");
                        next.extend(op.apply(buffer, t, &stage.output_schema));
                    }
                }
            }
            current = next;
        }
        current
    }
}

/// The Aurora-model continuous query engine.
pub struct StreamEngine {
    catalog: StreamCatalog,
    deployments: HashMap<DeploymentId, DeploymentState>,
    by_stream: HashMap<String, Vec<DeploymentId>>,
    by_handle: HashMap<StreamHandle, DeploymentId>,
    next_id: u64,
    stats: EngineStats,
}

impl Default for StreamEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamEngine {
    /// A new engine whose handles are minted under the host name `dsms`.
    #[must_use]
    pub fn new() -> Self {
        Self::with_host("dsms")
    }

    /// A new engine with an explicit host name (used in handle URIs).
    #[must_use]
    pub fn with_host(host: &str) -> Self {
        StreamEngine {
            catalog: StreamCatalog::new(host),
            deployments: HashMap::new(),
            by_stream: HashMap::new(),
            by_handle: HashMap::new(),
            next_id: 0,
            stats: EngineStats::default(),
        }
    }

    /// The engine's catalog (stream registry and handle registry).
    #[must_use]
    pub fn catalog(&self) -> &StreamCatalog {
        &self.catalog
    }

    /// Engine-wide counters.
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Register an input stream.
    ///
    /// # Errors
    /// Fails when the name is taken or the schema invalid.
    pub fn register_stream(&mut self, name: &str, schema: Schema) -> Result<(), DsmsError> {
        self.catalog.register(name, schema)?;
        self.by_stream.entry(name.to_string()).or_default();
        Ok(())
    }

    /// Schema of a registered input stream.
    ///
    /// # Errors
    /// Fails when the stream is unknown.
    pub fn stream_schema(&self, name: &str) -> Result<Arc<Schema>, DsmsError> {
        self.catalog.schema_of(name)
    }

    /// Deploy a query graph. Validates the graph against the input stream's
    /// schema, allocates the runtime state (window buffers) and mints an
    /// output-stream handle.
    ///
    /// # Errors
    /// Fails when the input stream is unknown or the graph invalid.
    pub fn deploy(&mut self, graph: &QueryGraph) -> Result<Deployment, DsmsError> {
        let input_schema = self.catalog.schema_of(&graph.stream)?;

        // Validate the chain and record every intermediate schema.
        let mut stages = Vec::with_capacity(graph.nodes.len());
        let mut current: Schema = (*input_schema).clone();
        for node in &graph.nodes {
            let out = node.operator.output_schema(&current)?;
            let window = match &node.operator {
                Operator::Aggregate(op) => Some(SlidingBuffer::new(op.window)),
                _ => None,
            };
            stages.push(Stage {
                operator: node.operator.clone(),
                output_schema: out.clone().shared(),
                window,
            });
            current = out;
        }
        let output_schema = current.shared();

        let id = DeploymentId(self.next_id);
        self.next_id += 1;
        let output_handle = self.catalog.mint_handle(format!("{id}"));

        let state = DeploymentState {
            graph: graph.clone(),
            stages,
            output_handle: output_handle.clone(),
            output_schema: Arc::clone(&output_schema),
            subscribers: Vec::new(),
            emitted: 0,
        };
        self.by_stream.entry(graph.stream.clone()).or_default().push(id);
        self.by_handle.insert(output_handle.clone(), id);
        self.deployments.insert(id, state);
        self.stats.deployments_created += 1;

        Ok(Deployment { id, output_handle, output_schema })
    }

    /// Withdraw a deployment by id, releasing its output handle. Subscribers
    /// see their channel disconnect.
    ///
    /// # Errors
    /// Fails when the deployment is unknown.
    pub fn withdraw(&mut self, id: DeploymentId) -> Result<(), DsmsError> {
        let state = self
            .deployments
            .remove(&id)
            .ok_or_else(|| DsmsError::UnknownHandle(format!("{id}")))?;
        self.catalog.release_handle(&state.output_handle);
        self.by_handle.remove(&state.output_handle);
        if let Some(list) = self.by_stream.get_mut(&state.graph.stream) {
            list.retain(|d| *d != id);
        }
        self.stats.deployments_withdrawn += 1;
        Ok(())
    }

    /// Withdraw the deployment behind an output-stream handle.
    ///
    /// # Errors
    /// Fails when the handle is unknown.
    pub fn withdraw_handle(&mut self, handle: &StreamHandle) -> Result<(), DsmsError> {
        let id = self
            .by_handle
            .get(handle)
            .copied()
            .ok_or_else(|| DsmsError::UnknownHandle(handle.uri().to_string()))?;
        self.withdraw(id)
    }

    /// Subscribe to the derived tuples of an output stream.
    ///
    /// # Errors
    /// Fails when the handle does not correspond to a live deployment.
    pub fn subscribe(&mut self, handle: &StreamHandle) -> Result<Receiver<Tuple>, DsmsError> {
        let id = self
            .by_handle
            .get(handle)
            .copied()
            .ok_or_else(|| DsmsError::UnknownHandle(handle.uri().to_string()))?;
        let (tx, rx) = unbounded();
        self.deployments
            .get_mut(&id)
            .expect("by_handle and deployments are kept consistent")
            .subscribers
            .push(tx);
        Ok(rx)
    }

    /// Schema of the output stream behind a handle.
    ///
    /// # Errors
    /// Fails when the handle is unknown.
    pub fn output_schema(&self, handle: &StreamHandle) -> Result<Arc<Schema>, DsmsError> {
        let id = self
            .by_handle
            .get(handle)
            .ok_or_else(|| DsmsError::UnknownHandle(handle.uri().to_string()))?;
        Ok(Arc::clone(&self.deployments[id].output_schema))
    }

    /// Push one source tuple into a registered stream. The tuple is run
    /// through every deployment on that stream; derived tuples are delivered
    /// to subscribers. Returns the total number of derived tuples emitted.
    ///
    /// # Errors
    /// Fails when the stream is unknown or the tuple does not match its
    /// schema.
    pub fn push(&mut self, stream: &str, tuple: Tuple) -> Result<usize, DsmsError> {
        let schema = self.catalog.schema_of(stream)?;
        if tuple.schema().as_ref() != schema.as_ref() {
            return Err(DsmsError::SchemaMismatch {
                stream: stream.to_string(),
                detail: format!(
                    "tuple schema {} differs from stream schema {}",
                    tuple.schema(),
                    schema
                ),
            });
        }
        self.stats.tuples_ingested += 1;

        let ids = self.by_stream.get(stream).cloned().unwrap_or_default();
        let mut emitted = 0usize;
        for id in ids {
            let Some(state) = self.deployments.get_mut(&id) else { continue };
            let outputs = state.process(tuple.clone());
            state.emitted += outputs.len() as u64;
            emitted += outputs.len();
            for out in outputs {
                state.subscribers.retain(|tx| tx.send(out.clone()).is_ok());
            }
        }
        self.stats.tuples_emitted += emitted as u64;
        Ok(emitted)
    }

    /// Number of live deployments.
    #[must_use]
    pub fn deployment_count(&self) -> usize {
        self.deployments.len()
    }

    /// Number of live deployments attached to one input stream.
    #[must_use]
    pub fn deployments_on(&self, stream: &str) -> usize {
        self.by_stream.get(stream).map_or(0, Vec::len)
    }

    /// Total derived tuples emitted by one deployment so far.
    #[must_use]
    pub fn emitted_by(&self, id: DeploymentId) -> Option<u64> {
        self.deployments.get(&id).map(|s| s.emitted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::QueryGraphBuilder;
    use crate::ops::aggregate::{AggFunc, AggSpec};
    use crate::value::Value;
    use crate::window::WindowSpec;

    fn weather_tuple(schema: &Schema, i: i64, rain: f64, wind: f64) -> Tuple {
        Tuple::builder(schema)
            .set("samplingtime", Value::Timestamp(i * 30_000))
            .set("rainrate", rain)
            .set("windspeed", wind)
            .finish_with_defaults()
    }

    fn engine_with_weather() -> (StreamEngine, Schema) {
        let mut engine = StreamEngine::new();
        let schema = Schema::weather_example();
        engine.register_stream("weather", schema.clone()).unwrap();
        (engine, schema)
    }

    #[test]
    fn deploy_subscribe_push_full_example1_pipeline() {
        let (mut engine, schema) = engine_with_weather();
        let graph = QueryGraphBuilder::on_stream("weather")
            .filter_str("rainrate > 5")
            .unwrap()
            .map(["samplingtime", "rainrate", "windspeed"])
            .aggregate(
                WindowSpec::tuples(5, 2),
                vec![
                    AggSpec::new("samplingtime", AggFunc::LastValue),
                    AggSpec::new("rainrate", AggFunc::Avg),
                    AggSpec::new("windspeed", AggFunc::Max),
                ],
            )
            .build();
        let deployment = engine.deploy(&graph).unwrap();
        assert_eq!(
            deployment.output_schema.field_names(),
            vec!["lastvalsamplingtime", "avgrainrate", "maxwindspeed"]
        );
        let rx = engine.subscribe(&deployment.output_handle).unwrap();

        // 10 tuples, rain alternates below/above the threshold; only the 6
        // above-threshold tuples reach the window.
        for i in 0..10 {
            let rain = if i % 2 == 0 { 10.0 + f64::from(i) } else { 1.0 };
            engine
                .push("weather", weather_tuple(&schema, i64::from(i), rain, f64::from(i)))
                .unwrap();
        }
        // 5 tuples pass the filter at i=0,2,4,6,8 → one window closes.
        let out: Vec<Tuple> = rx.try_iter().collect();
        assert_eq!(out.len(), 1);
        let avg = out[0].get_f64("avgrainrate").unwrap();
        assert!((avg - (10.0 + 12.0 + 14.0 + 16.0 + 18.0) / 5.0).abs() < 1e-9);
        assert_eq!(out[0].get_f64("maxwindspeed"), Some(8.0));
    }

    #[test]
    fn identity_deployment_passes_tuples_through() {
        let (mut engine, schema) = engine_with_weather();
        let d = engine.deploy(&QueryGraph::identity("weather")).unwrap();
        let rx = engine.subscribe(&d.output_handle).unwrap();
        engine.push("weather", weather_tuple(&schema, 0, 3.0, 1.0)).unwrap();
        assert_eq!(rx.try_iter().count(), 1);
    }

    #[test]
    fn multiple_deployments_on_one_stream() {
        let (mut engine, schema) = engine_with_weather();
        let g1 =
            QueryGraphBuilder::on_stream("weather").filter_str("rainrate > 5").unwrap().build();
        let g2 =
            QueryGraphBuilder::on_stream("weather").filter_str("rainrate > 100").unwrap().build();
        let d1 = engine.deploy(&g1).unwrap();
        let d2 = engine.deploy(&g2).unwrap();
        let rx1 = engine.subscribe(&d1.output_handle).unwrap();
        let rx2 = engine.subscribe(&d2.output_handle).unwrap();
        assert_eq!(engine.deployments_on("weather"), 2);

        let emitted = engine.push("weather", weather_tuple(&schema, 0, 10.0, 0.0)).unwrap();
        assert_eq!(emitted, 1);
        assert_eq!(rx1.try_iter().count(), 1);
        assert_eq!(rx2.try_iter().count(), 0);
    }

    #[test]
    fn withdraw_disconnects_subscribers_and_releases_handle() {
        let (mut engine, schema) = engine_with_weather();
        let d = engine.deploy(&QueryGraph::identity("weather")).unwrap();
        let rx = engine.subscribe(&d.output_handle).unwrap();
        assert!(engine.catalog().handle_is_live(&d.output_handle));

        engine.withdraw(d.id).unwrap();
        assert!(!engine.catalog().handle_is_live(&d.output_handle));
        assert_eq!(engine.deployment_count(), 0);
        // Pushing more data does not reach the old subscriber.
        engine.push("weather", weather_tuple(&schema, 0, 1.0, 1.0)).unwrap();
        assert!(rx.try_recv().is_err());
        // Subscribing to the withdrawn handle now fails.
        assert!(matches!(engine.subscribe(&d.output_handle), Err(DsmsError::UnknownHandle(_))));
        // Double-withdraw fails.
        assert!(engine.withdraw(d.id).is_err());
    }

    #[test]
    fn withdraw_by_handle() {
        let (mut engine, _schema) = engine_with_weather();
        let d = engine.deploy(&QueryGraph::identity("weather")).unwrap();
        engine.withdraw_handle(&d.output_handle).unwrap();
        assert_eq!(engine.deployment_count(), 0);
        assert!(engine.withdraw_handle(&d.output_handle).is_err());
    }

    #[test]
    fn push_checks_stream_and_schema() {
        let (mut engine, _schema) = engine_with_weather();
        let other = Schema::gps_example();
        let t = Tuple::builder(&other).finish_with_defaults();
        assert!(matches!(engine.push("nosuch", t.clone()), Err(DsmsError::UnknownStream(_))));
        assert!(matches!(engine.push("weather", t), Err(DsmsError::SchemaMismatch { .. })));
    }

    #[test]
    fn deploy_rejects_unknown_stream_and_bad_graph() {
        let (mut engine, _schema) = engine_with_weather();
        let g = QueryGraphBuilder::on_stream("nosuch").build();
        assert!(matches!(engine.deploy(&g), Err(DsmsError::UnknownStream(_))));
        let g = QueryGraphBuilder::on_stream("weather").map(["bogus"]).build();
        assert!(matches!(engine.deploy(&g), Err(DsmsError::UnknownAttribute { .. })));
    }

    #[test]
    fn stats_are_accumulated() {
        let (mut engine, schema) = engine_with_weather();
        let d = engine.deploy(&QueryGraph::identity("weather")).unwrap();
        engine.push("weather", weather_tuple(&schema, 0, 1.0, 1.0)).unwrap();
        engine.push("weather", weather_tuple(&schema, 1, 2.0, 1.0)).unwrap();
        engine.withdraw(d.id).unwrap();
        let stats = engine.stats();
        assert_eq!(stats.tuples_ingested, 2);
        assert_eq!(stats.tuples_emitted, 2);
        assert_eq!(stats.deployments_created, 1);
        assert_eq!(stats.deployments_withdrawn, 1);
        assert_eq!(engine.emitted_by(d.id), None);
    }

    #[test]
    fn output_schema_lookup_by_handle() {
        let (mut engine, _schema) = engine_with_weather();
        let g = QueryGraphBuilder::on_stream("weather").map(["rainrate"]).build();
        let d = engine.deploy(&g).unwrap();
        let s = engine.output_schema(&d.output_handle).unwrap();
        assert_eq!(s.field_names(), vec!["rainrate"]);
        assert!(engine.output_schema(&StreamHandle::from_uri("exacml://x/streams/999")).is_err());
    }
}
