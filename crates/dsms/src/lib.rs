//! # exacml-dsms — an Aurora-model Data Stream Management System
//!
//! The eXACML+ paper deploys its access-controlled continuous queries on the
//! commercial **StreamBase** engine, which implements the **Aurora** stream
//! model: a data stream is an append-only sequence of tuples sharing a
//! schema, and a continuous query is a directed acyclic graph ("query
//! graph") of operator *boxes* applied to every arriving tuple. The paper
//! uses three boxes — **filter** (selection), **map** (projection) and
//! **window-based aggregation** — plus the StreamSQL textual form of the
//! graphs.
//!
//! StreamBase is proprietary, so this crate is a from-scratch substitute
//! that implements exactly the model surface the paper depends on:
//!
//! * typed schemas, tuples and append-only streams ([`schema`], [`mod@tuple`]),
//! * the three operator boxes with tuple- and time-based sliding windows
//!   ([`ops`], [`window`]),
//! * query graphs with schema validation and output-schema inference
//!   ([`graph`]),
//! * a continuous-query engine that registers input streams, deploys and
//!   withdraws query graphs, pushes tuples and delivers derived tuples to
//!   subscribers ([`engine`]) — internally synchronized and sharded by
//!   stream, so every operation takes `&self` and pushes to different
//!   streams run in parallel,
//! * a StreamSQL dialect writer/parser matching Figure 4(b) of the paper
//!   ([`streamsql`]),
//! * a catalog of stream handles (URIs) that the framework returns to
//!   clients instead of raw data ([`catalog`]).
//!
//! ```
//! use exacml_dsms::prelude::*;
//!
//! // The weather schema of the paper's Example 1.
//! let schema = Schema::weather_example();
//! let engine = StreamEngine::new();
//! engine.register_stream("weather", schema.clone()).unwrap();
//!
//! // filter(rainrate > 5) → map(samplingtime, rainrate) on the stream.
//! let graph = QueryGraphBuilder::on_stream("weather")
//!     .filter_str("rainrate > 5").unwrap()
//!     .map(["samplingtime", "rainrate"])
//!     .build();
//! let deployment = engine.deploy(&graph).unwrap();
//! let rx = engine.subscribe(&deployment.output_handle).unwrap();
//!
//! engine.push("weather", Tuple::builder(&schema)
//!     .set("samplingtime", Value::Timestamp(0))
//!     .set("rainrate", Value::Double(9.0))
//!     .finish_with_defaults()).unwrap();
//! assert_eq!(rx.try_recv().unwrap().get("rainrate").unwrap(), &Value::Double(9.0));
//! ```

pub mod catalog;
mod compiled;
pub mod engine;
pub mod error;
pub mod graph;
pub mod ops;
pub mod schema;
pub mod streamsql;
pub mod tuple;
pub mod value;
pub mod window;

pub use catalog::{StreamCatalog, StreamHandle};
pub use compiled::ResidualSpec;
pub use engine::{Deployment, DeploymentId, EngineStats, StreamEngine};
pub use error::DsmsError;
pub use graph::{GraphNode, QueryGraph, QueryGraphBuilder};
pub use ops::aggregate::{AggFunc, AggSpec, AggregateOp};
pub use ops::filter::FilterOp;
pub use ops::map::MapOp;
pub use ops::Operator;
pub use schema::{Field, Schema};
pub use tuple::Tuple;
pub use value::{DataType, Value};
pub use window::{WindowKind, WindowSpec};

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::catalog::{StreamCatalog, StreamHandle};
    pub use crate::compiled::ResidualSpec;
    pub use crate::engine::{Deployment, DeploymentId, StreamEngine};
    pub use crate::error::DsmsError;
    pub use crate::graph::{GraphNode, QueryGraph, QueryGraphBuilder};
    pub use crate::ops::aggregate::{AggFunc, AggSpec, AggregateOp};
    pub use crate::ops::filter::FilterOp;
    pub use crate::ops::map::MapOp;
    pub use crate::ops::Operator;
    pub use crate::schema::{Field, Schema};
    pub use crate::streamsql;
    pub use crate::tuple::Tuple;
    pub use crate::value::{DataType, Value};
    pub use crate::window::{WindowKind, WindowSpec};
}
