//! Stream catalog and stream handles.
//!
//! The eXACML+ framework never returns raw data to a client: a successful
//! request yields a **stream handle** — a unique resource identifier (URI)
//! pointing at the processed output stream inside the DSMS (Section 1,
//! contribution 2). The catalog tracks registered input streams and the
//! handles of deployed output streams.

use crate::error::DsmsError;
use crate::schema::Schema;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A unique resource identifier for a (derived) data stream,
/// e.g. `exacml://dsms-host/streams/42`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StreamHandle(String);

impl StreamHandle {
    /// Wrap an existing URI string.
    pub fn from_uri(uri: impl Into<String>) -> Self {
        StreamHandle(uri.into())
    }

    /// Mint a new handle for the given host and serial number.
    #[must_use]
    pub fn mint(host: &str, serial: u64) -> Self {
        StreamHandle(format!("exacml://{host}/streams/{serial}"))
    }

    /// The URI string.
    #[must_use]
    pub fn uri(&self) -> &str {
        &self.0
    }

    /// The serial number the handle was minted with — the trailing path
    /// segment of a `exacml://host/streams/<serial>` URI. `None` for foreign
    /// URIs that do not follow the minted shape. Recovery journals record
    /// this so a replay can re-mint the identical URI.
    #[must_use]
    pub fn serial(&self) -> Option<u64> {
        self.0.rsplit('/').next()?.parse().ok()
    }

    /// Approximate wire size of the handle in bytes (used by the simulated
    /// network — handles are tiny compared to data, which is why the proxy
    /// cache helps less here than in the archived-data eXACML system).
    #[must_use]
    pub fn wire_size(&self) -> usize {
        self.0.len()
    }
}

impl fmt::Display for StreamHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Thread-safe registry of input streams and minted output handles.
#[derive(Debug, Default)]
pub struct StreamCatalog {
    host: String,
    streams: RwLock<HashMap<String, Arc<Schema>>>,
    handles: RwLock<HashMap<StreamHandle, String>>,
    serial: AtomicU64,
}

impl StreamCatalog {
    /// Create a catalog for the given DSMS host name (used in handle URIs).
    #[must_use]
    pub fn new(host: impl Into<String>) -> Self {
        StreamCatalog {
            host: host.into(),
            streams: RwLock::new(HashMap::new()),
            handles: RwLock::new(HashMap::new()),
            serial: AtomicU64::new(0),
        }
    }

    /// Register an input stream.
    ///
    /// # Errors
    /// Fails when the name is taken or the schema is invalid.
    pub fn register(&self, name: &str, schema: Schema) -> Result<Arc<Schema>, DsmsError> {
        schema.validate().map_err(DsmsError::InvalidGraph)?;
        let mut streams = self.streams.write();
        if streams.contains_key(name) {
            return Err(DsmsError::StreamAlreadyExists(name.to_string()));
        }
        let shared = schema.shared();
        streams.insert(name.to_string(), Arc::clone(&shared));
        Ok(shared)
    }

    /// Remove an input stream registration.
    ///
    /// # Errors
    /// Fails when the stream is unknown.
    pub fn unregister(&self, name: &str) -> Result<(), DsmsError> {
        if self.streams.write().remove(name).is_none() {
            return Err(DsmsError::UnknownStream(name.to_string()));
        }
        Ok(())
    }

    /// Schema of a registered stream.
    ///
    /// # Errors
    /// Fails when the stream is unknown.
    pub fn schema_of(&self, name: &str) -> Result<Arc<Schema>, DsmsError> {
        self.streams
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| DsmsError::UnknownStream(name.to_string()))
    }

    /// Whether a stream of this name is registered.
    #[must_use]
    pub fn contains(&self, name: &str) -> bool {
        self.streams.read().contains_key(name)
    }

    /// Names of all registered streams (sorted for deterministic output).
    #[must_use]
    pub fn stream_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.streams.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Mint a fresh handle associated with a description (usually the name of
    /// the deployment's output stream).
    pub fn mint_handle(&self, description: impl Into<String>) -> StreamHandle {
        let serial = self.serial.fetch_add(1, Ordering::Relaxed);
        let handle = StreamHandle::mint(&self.host, serial);
        self.handles.write().insert(handle.clone(), description.into());
        handle
    }

    /// Recovery hook: adopt a specific handle URI instead of minting a fresh
    /// serial. A recovering server re-attaches each journaled grant under the
    /// exact handle its consumer holds (the journal records the URI), then
    /// advances the serial counter past everything ever minted with
    /// [`StreamCatalog::resume_serial_at`].
    ///
    /// # Errors
    /// Fails when a live handle already owns the URI.
    pub fn adopt_handle(
        &self,
        handle: StreamHandle,
        description: impl Into<String>,
    ) -> Result<(), DsmsError> {
        let mut handles = self.handles.write();
        if handles.contains_key(&handle) {
            return Err(DsmsError::StreamAlreadyExists(handle.uri().to_string()));
        }
        handles.insert(handle, description.into());
        Ok(())
    }

    /// Recovery hook: resume handle-serial minting at `serial` (no-op when
    /// the counter is already past it). A recovering server replays each
    /// surviving deployment with the serial it held before the crash, then
    /// advances the counter past the largest serial ever minted so released
    /// handles are never re-issued to a different deployment.
    pub fn resume_serial_at(&self, serial: u64) {
        self.serial.fetch_max(serial, Ordering::Relaxed);
    }

    /// Forget a handle (when its deployment is withdrawn).
    pub fn release_handle(&self, handle: &StreamHandle) {
        self.handles.write().remove(handle);
    }

    /// Whether the handle is still live.
    #[must_use]
    pub fn handle_is_live(&self, handle: &StreamHandle) -> bool {
        self.handles.read().contains_key(handle)
    }

    /// Number of live handles.
    #[must_use]
    pub fn live_handles(&self) -> usize {
        self.handles.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    #[test]
    fn register_lookup_unregister() {
        let catalog = StreamCatalog::new("dsms-host");
        catalog.register("weather", Schema::weather_example()).unwrap();
        assert!(catalog.contains("weather"));
        assert_eq!(catalog.schema_of("weather").unwrap().len(), 8);
        assert_eq!(catalog.stream_names(), vec!["weather".to_string()]);
        catalog.unregister("weather").unwrap();
        assert!(!catalog.contains("weather"));
        assert!(matches!(catalog.schema_of("weather"), Err(DsmsError::UnknownStream(_))));
        assert!(matches!(catalog.unregister("weather"), Err(DsmsError::UnknownStream(_))));
    }

    #[test]
    fn duplicate_registration_rejected() {
        let catalog = StreamCatalog::new("h");
        catalog.register("s", Schema::weather_example()).unwrap();
        assert!(matches!(
            catalog.register("s", Schema::weather_example()),
            Err(DsmsError::StreamAlreadyExists(_))
        ));
    }

    #[test]
    fn invalid_schema_rejected() {
        let catalog = StreamCatalog::new("h");
        let bad = Schema::from_pairs([("a", DataType::Int), ("a", DataType::Int)]);
        assert!(catalog.register("s", bad).is_err());
    }

    #[test]
    fn handles_are_unique_uris() {
        let catalog = StreamCatalog::new("dsms-host");
        let h1 = catalog.mint_handle("out-1");
        let h2 = catalog.mint_handle("out-2");
        assert_ne!(h1, h2);
        assert!(h1.uri().starts_with("exacml://dsms-host/streams/"));
        assert!(catalog.handle_is_live(&h1));
        assert_eq!(catalog.live_handles(), 2);
        catalog.release_handle(&h1);
        assert!(!catalog.handle_is_live(&h1));
        assert_eq!(catalog.live_handles(), 1);
    }

    #[test]
    fn handle_wire_size_is_its_length() {
        let h = StreamHandle::from_uri("exacml://h/streams/1");
        assert_eq!(h.wire_size(), "exacml://h/streams/1".len());
        assert_eq!(h.to_string(), "exacml://h/streams/1");
    }
}
