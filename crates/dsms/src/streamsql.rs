//! StreamSQL generation and parsing.
//!
//! StreamBase exposes query graphs through **StreamSQL**, a SQL-like surface
//! syntax (Figure 4(b) of the paper). The eXACML+ PEP converts merged query
//! graphs into StreamSQL scripts before sending them to the DSMS, and the
//! *direct-query* baseline of the evaluation feeds StreamSQL scripts straight
//! to the engine. This module provides both directions:
//!
//! * [`generate`] — render a [`QueryGraph`] (plus its input schema) as a
//!   StreamSQL script in the same shape as Figure 4(b);
//! * [`parse`] — parse such a script back into the input stream name, its
//!   schema and the query graph (used by the direct-query workload files).

use crate::error::DsmsError;
use crate::graph::{QueryGraph, QueryGraphBuilder};
use crate::ops::aggregate::{AggFunc, AggSpec};
use crate::ops::Operator;
use crate::schema::{Field, Schema};
use crate::value::DataType;
use crate::window::{WindowKind, WindowSpec};

/// Render a query graph as a StreamSQL script.
///
/// The script always begins with the `CREATE INPUT STREAM` declaration of the
/// source stream and ends with a `SELECT ... INTO output` statement, exactly
/// like the paper's Figure 4(b).
#[must_use]
pub fn generate(graph: &QueryGraph, input_schema: &Schema) -> String {
    let mut out = String::new();
    // CREATE INPUT STREAM weather (samplingtime timestamp, ...);
    let fields: Vec<String> = input_schema
        .fields()
        .iter()
        .map(|f| format!("{} {}", f.name, f.data_type.sql_name()))
        .collect();
    out.push_str(&format!("CREATE INPUT STREAM {} ({});\n", graph.stream, fields.join(", ")));

    if graph.is_empty() {
        out.push_str("CREATE OUTPUT STREAM output;\n");
        out.push_str(&format!("SELECT * FROM {} INTO output;\n", graph.stream));
        return out;
    }

    let mut source = graph.stream.clone();
    let last = graph.nodes.len() - 1;
    for (i, node) in graph.nodes.iter().enumerate() {
        let target = if i == last { "output".to_string() } else { format!("internal_{i}") };
        if i == last {
            out.push_str("CREATE OUTPUT STREAM output;\n");
        } else {
            out.push_str(&format!("CREATE STREAM {target};\n"));
        }
        match &node.operator {
            Operator::Filter(op) => {
                out.push_str(&format!(
                    "SELECT * FROM {source} WHERE {} INTO {target};\n",
                    op.source()
                ));
            }
            Operator::Map(op) => {
                out.push_str(&format!(
                    "SELECT {} FROM {source} INTO {target};\n",
                    op.attributes().join(", ")
                ));
            }
            Operator::Aggregate(op) => {
                let window_name = format!("_{}{}", op.window.size, op.window.kind.keyword());
                let unit = match op.window.kind {
                    WindowKind::Tuple => "TUPLES",
                    WindowKind::Time => "TIME",
                };
                out.push_str(&format!(
                    "CREATE WINDOW {window_name} (SIZE {} ADVANCE {} {unit});\n",
                    op.window.size, op.window.advance
                ));
                let selects: Vec<String> = op
                    .specs
                    .iter()
                    .map(|s| {
                        format!("{}({}) AS {}", s.function.keyword(), s.attribute, s.output_name())
                    })
                    .collect();
                out.push_str(&format!(
                    "SELECT {} FROM {source}[{window_name}] INTO {target};\n",
                    selects.join(", ")
                ));
            }
        }
        source = target;
    }
    out
}

/// The result of parsing a StreamSQL script.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedScript {
    /// Name of the input stream declared by `CREATE INPUT STREAM`.
    pub stream: String,
    /// Schema of the input stream.
    pub schema: Schema,
    /// The query graph described by the `SELECT` statements.
    pub graph: QueryGraph,
}

/// Parse a StreamSQL script (the dialect produced by [`generate`]).
///
/// # Errors
/// Returns [`DsmsError::StreamSqlParse`] describing the offending statement.
pub fn parse(script: &str) -> Result<ParsedScript, DsmsError> {
    let mut stream: Option<String> = None;
    let mut schema: Option<Schema> = None;
    let mut windows: Vec<(String, WindowSpec)> = Vec::new();
    let mut builder: Option<QueryGraphBuilder> = None;

    for (line_no, raw) in script.split(';').enumerate() {
        // Drop comment lines, then re-join so a statement may be preceded by
        // `-- ...` comments within the same `;`-terminated chunk.
        let stmt = raw
            .lines()
            .filter(|l| !l.trim_start().starts_with("--"))
            .collect::<Vec<_>>()
            .join("\n");
        let stmt = stmt.trim().trim_end_matches(';').trim();
        if stmt.is_empty() {
            continue;
        }
        let upper = stmt.to_ascii_uppercase();
        let err = |detail: String| DsmsError::StreamSqlParse { line: line_no + 1, detail };

        if upper.starts_with("CREATE INPUT STREAM") {
            let rest = &stmt["CREATE INPUT STREAM".len()..];
            let open = rest
                .find('(')
                .ok_or_else(|| err("missing '(' in input stream declaration".into()))?;
            let close = rest
                .rfind(')')
                .ok_or_else(|| err("missing ')' in input stream declaration".into()))?;
            let name = rest[..open].trim().to_string();
            if name.is_empty() {
                return Err(err("missing input stream name".into()));
            }
            let mut fields = Vec::new();
            for col in rest[open + 1..close].split(',') {
                let col = col.trim();
                if col.is_empty() {
                    continue;
                }
                let mut parts = col.split_whitespace();
                let fname = parts.next().ok_or_else(|| err(format!("bad column '{col}'")))?;
                let ftype =
                    parts.next().ok_or_else(|| err(format!("column '{fname}' missing a type")))?;
                let data_type = DataType::from_sql_name(ftype)
                    .ok_or_else(|| err(format!("unknown type '{ftype}'")))?;
                fields.push(Field::new(fname, data_type));
            }
            let s = Schema::new(fields);
            s.validate().map_err(&err)?;
            builder = Some(QueryGraphBuilder::on_stream(name.clone()));
            stream = Some(name);
            schema = Some(s);
        } else if upper.starts_with("CREATE OUTPUT STREAM") || upper.starts_with("CREATE STREAM") {
            // Intermediate stream declarations carry no information we need.
        } else if upper.starts_with("CREATE WINDOW") {
            let rest = &stmt["CREATE WINDOW".len()..];
            let open =
                rest.find('(').ok_or_else(|| err("missing '(' in window declaration".into()))?;
            let close =
                rest.rfind(')').ok_or_else(|| err("missing ')' in window declaration".into()))?;
            let name = rest[..open].trim().to_string();
            let body = rest[open + 1..close].to_ascii_uppercase();
            let tokens: Vec<&str> = body.split_whitespace().collect();
            let size_pos = tokens
                .iter()
                .position(|t| *t == "SIZE")
                .ok_or_else(|| err("window missing SIZE".into()))?;
            let adv_pos = tokens
                .iter()
                .position(|t| *t == "ADVANCE")
                .ok_or_else(|| err("window missing ADVANCE".into()))?;
            let size: u64 = tokens
                .get(size_pos + 1)
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| err("bad window SIZE".into()))?;
            let advance: u64 = tokens
                .get(adv_pos + 1)
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| err("bad window ADVANCE".into()))?;
            let kind = if tokens.iter().any(|t| *t == "TIME" || *t == "SECONDS") {
                WindowKind::Time
            } else {
                WindowKind::Tuple
            };
            windows.push((name, WindowSpec { kind, size, advance }));
        } else if upper.starts_with("SELECT") {
            let b =
                builder.take().ok_or_else(|| err("SELECT before CREATE INPUT STREAM".into()))?;
            let next = parse_select(stmt, &upper, &windows, b, line_no + 1)?;
            builder = Some(next);
        } else {
            return Err(err(format!("unrecognised statement: {stmt}")));
        }
    }

    let stream = stream.ok_or(DsmsError::StreamSqlParse {
        line: 0,
        detail: "script declares no input stream".into(),
    })?;
    let schema = schema.expect("schema is set together with stream");
    let graph = builder.expect("builder is set together with stream").build();
    Ok(ParsedScript { stream, schema, graph })
}

/// Parse one `SELECT ... FROM src[window]? (WHERE cond)? INTO target` into
/// zero or more operators appended to the builder.
fn parse_select(
    stmt: &str,
    upper: &str,
    windows: &[(String, WindowSpec)],
    mut builder: QueryGraphBuilder,
    line: usize,
) -> Result<QueryGraphBuilder, DsmsError> {
    let err = |detail: String| DsmsError::StreamSqlParse { line, detail };
    let from_pos = upper.find(" FROM ").ok_or_else(|| err("SELECT without FROM".into()))?;
    let into_pos = upper.rfind(" INTO ").ok_or_else(|| err("SELECT without INTO".into()))?;
    let select_list = stmt["SELECT".len()..from_pos].trim();
    let where_pos = upper.find(" WHERE ");
    let from_clause_end = where_pos.unwrap_or(into_pos);
    let from_clause = stmt[from_pos + " FROM ".len()..from_clause_end].trim();

    // WHERE → filter box.
    if let Some(wp) = where_pos {
        let condition = stmt[wp + " WHERE ".len()..into_pos].trim();
        builder = builder.filter_str(condition)?;
    }

    // Window reference → aggregation box; otherwise projection (unless `*`).
    if let Some(open) = from_clause.find('[') {
        let close = from_clause
            .rfind(']')
            .ok_or_else(|| err("missing ']' after window reference".into()))?;
        let window_name = from_clause[open + 1..close].trim();
        let spec = windows
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(window_name))
            .map(|(_, s)| *s)
            .ok_or_else(|| err(format!("unknown window '{window_name}'")))?;
        let mut specs = Vec::new();
        for item in select_list.split(',') {
            let item = item.trim();
            let open =
                item.find('(').ok_or_else(|| err(format!("expected func(attr) in '{item}'")))?;
            let close = item.find(')').ok_or_else(|| err(format!("missing ')' in '{item}'")))?;
            let func = AggFunc::from_keyword(item[..open].trim())
                .ok_or_else(|| err(format!("unknown aggregate function in '{item}'")))?;
            let attr = item[open + 1..close].trim();
            specs.push(AggSpec::new(attr, func));
        }
        builder = builder.aggregate(spec, specs);
    } else if select_list != "*" {
        let attrs: Vec<String> = select_list
            .split(',')
            .map(|a| a.trim().to_string())
            .filter(|a| !a.is_empty())
            .collect();
        if attrs.is_empty() {
            return Err(err("empty SELECT list".into()));
        }
        builder = builder.map(attrs);
    }
    Ok(builder)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::QueryGraphBuilder;
    use crate::ops::aggregate::AggFunc;

    fn figure4b_graph() -> (QueryGraph, Schema) {
        let graph = QueryGraphBuilder::on_stream("weather")
            .filter_str("rainrate > 50")
            .unwrap()
            .map(["samplingtime", "rainrate"])
            .aggregate(
                WindowSpec::tuples(10, 2),
                vec![
                    AggSpec::new("samplingtime", AggFunc::LastValue),
                    AggSpec::new("rainrate", AggFunc::Avg),
                ],
            )
            .build();
        (graph, Schema::weather_example())
    }

    #[test]
    fn generate_matches_figure4b_shape() {
        let (graph, schema) = figure4b_graph();
        let sql = generate(&graph, &schema);
        assert!(sql.contains("CREATE INPUT STREAM weather (samplingtime timestamp"));
        assert!(sql.contains("SELECT * FROM weather WHERE rainrate > 50 INTO internal_0"));
        assert!(sql.contains("SELECT samplingtime, rainrate FROM internal_0 INTO internal_1"));
        assert!(sql.contains("CREATE WINDOW _10tuple (SIZE 10 ADVANCE 2 TUPLES)"));
        assert!(sql.contains("avg(rainrate) AS avgrainrate"));
        assert!(sql.contains("lastval(samplingtime) AS lastvalsamplingtime"));
        assert!(sql.trim_end().ends_with("INTO output;"));
    }

    #[test]
    fn generate_identity_graph() {
        let schema = Schema::weather_example();
        let sql = generate(&QueryGraph::identity("weather"), &schema);
        assert!(sql.contains("SELECT * FROM weather INTO output"));
    }

    #[test]
    fn round_trip_filter_map_aggregate() {
        let (graph, schema) = figure4b_graph();
        let sql = generate(&graph, &schema);
        let parsed = parse(&sql).unwrap();
        assert_eq!(parsed.stream, "weather");
        assert_eq!(parsed.schema, schema);
        assert_eq!(parsed.graph.composition(), "FB+MB+AB");
        assert_eq!(parsed.graph.filter().unwrap().source(), "rainrate > 50");
        assert_eq!(
            parsed.graph.map().unwrap().attributes(),
            &["samplingtime".to_string(), "rainrate".to_string()]
        );
        let agg = parsed.graph.aggregate().unwrap();
        assert_eq!(agg.window, WindowSpec::tuples(10, 2));
        assert_eq!(agg.specs.len(), 2);
        // The parsed graph must validate and produce the same output schema.
        assert_eq!(
            parsed.graph.output_schema(&schema).unwrap(),
            graph.output_schema(&schema).unwrap()
        );
    }

    #[test]
    fn round_trip_single_box_graphs() {
        let schema = Schema::weather_example();
        for graph in [
            QueryGraphBuilder::on_stream("weather").filter_str("windspeed <= 30").unwrap().build(),
            QueryGraphBuilder::on_stream("weather").map(["rainrate", "windspeed"]).build(),
            QueryGraphBuilder::on_stream("weather")
                .aggregate(
                    WindowSpec::time(60_000, 30_000),
                    vec![AggSpec::new("rainrate", AggFunc::Sum)],
                )
                .build(),
            QueryGraph::identity("weather"),
        ] {
            let sql = generate(&graph, &schema);
            let parsed = parse(&sql).unwrap();
            assert_eq!(parsed.graph.composition(), graph.composition(), "script:\n{sql}");
            assert_eq!(
                parsed.graph.output_schema(&schema).unwrap(),
                graph.output_schema(&schema).unwrap()
            );
        }
    }

    #[test]
    fn parse_rejects_malformed_scripts() {
        assert!(matches!(parse("SELECT * FROM x INTO y;"), Err(DsmsError::StreamSqlParse { .. })));
        assert!(matches!(parse(""), Err(DsmsError::StreamSqlParse { .. })));
        assert!(matches!(
            parse("CREATE INPUT STREAM s (a blob);"),
            Err(DsmsError::StreamSqlParse { .. })
        ));
        assert!(matches!(
            parse("CREATE INPUT STREAM s (a int);\nDROP TABLE s;"),
            Err(DsmsError::StreamSqlParse { .. })
        ));
        // Unknown window reference.
        let script =
            "CREATE INPUT STREAM s (a int);\nSELECT avg(a) AS avga FROM s[_5tuple] INTO output;";
        assert!(matches!(parse(script), Err(DsmsError::StreamSqlParse { .. })));
    }

    #[test]
    fn parse_accepts_comments_and_blank_lines() {
        let script = "-- weather feed\nCREATE INPUT STREAM s (a int);\n\nSELECT * FROM s WHERE a > 3 INTO output;";
        let parsed = parse(script).unwrap();
        assert_eq!(parsed.graph.composition(), "FB");
    }

    #[test]
    fn parsed_graph_is_deployable() {
        use crate::engine::StreamEngine;
        use crate::tuple::Tuple;
        use crate::value::Value;
        let (graph, schema) = figure4b_graph();
        let sql = generate(&graph, &schema);
        let parsed = parse(&sql).unwrap();

        let engine = StreamEngine::new();
        engine.register_stream(&parsed.stream, parsed.schema.clone()).unwrap();
        let d = engine.deploy(&parsed.graph).unwrap();
        let rx = engine.subscribe(&d.output_handle).unwrap();
        for i in 0..25 {
            let t = Tuple::builder(&parsed.schema)
                .set("samplingtime", Value::Timestamp(i))
                .set("rainrate", 60.0 + i as f64)
                .finish_with_defaults();
            engine.push(&parsed.stream, t).unwrap();
        }
        // 25 tuples all pass the filter; window size 10 advance 2 → windows
        // close at tuple 10, 12, ..., 24 → 8 emissions.
        assert_eq!(rx.try_iter().count(), 8);
    }
}
