//! Query graphs.
//!
//! In the Aurora model a continuous query is a directed acyclic graph of
//! operator boxes applied to a data stream (Section 2.1). Every graph the
//! eXACML+ framework generates — whether from policy obligations or from a
//! user query — is a linear chain over a single input stream, of the shape
//! `filter? → map? → aggregate?` (Figure 1). [`QueryGraph`] models such a
//! chain; the ordering of boxes is preserved exactly as constructed.

use crate::error::DsmsError;
use crate::ops::aggregate::{AggSpec, AggregateOp};
use crate::ops::filter::FilterOp;
use crate::ops::map::MapOp;
use crate::ops::Operator;
use crate::schema::Schema;
use crate::window::WindowSpec;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One node (box) of a query graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphNode {
    /// Position of the node in the chain (0-based).
    pub id: usize,
    /// The operator box.
    pub operator: Operator,
}

/// A continuous query: a chain of operator boxes over one input stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryGraph {
    /// Name of the input stream the query is applied to.
    pub stream: String,
    /// The operator chain, in application order.
    pub nodes: Vec<GraphNode>,
}

impl QueryGraph {
    /// An empty (identity) query over a stream: every tuple passes through
    /// unchanged.
    #[must_use]
    pub fn identity(stream: impl Into<String>) -> Self {
        QueryGraph { stream: stream.into(), nodes: Vec::new() }
    }

    /// Build a graph from a list of operators.
    #[must_use]
    pub fn from_operators(stream: impl Into<String>, operators: Vec<Operator>) -> Self {
        QueryGraph {
            stream: stream.into(),
            nodes: operators
                .into_iter()
                .enumerate()
                .map(|(id, operator)| GraphNode { id, operator })
                .collect(),
        }
    }

    /// The operators in application order.
    #[must_use]
    pub fn operators(&self) -> Vec<&Operator> {
        self.nodes.iter().map(|n| &n.operator).collect()
    }

    /// Number of operator boxes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no boxes (identity query).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The first filter box, if any.
    #[must_use]
    pub fn filter(&self) -> Option<&FilterOp> {
        self.nodes.iter().find_map(|n| match &n.operator {
            Operator::Filter(f) => Some(f),
            _ => None,
        })
    }

    /// The first map box, if any.
    #[must_use]
    pub fn map(&self) -> Option<&MapOp> {
        self.nodes.iter().find_map(|n| match &n.operator {
            Operator::Map(m) => Some(m),
            _ => None,
        })
    }

    /// The first aggregation box, if any.
    #[must_use]
    pub fn aggregate(&self) -> Option<&AggregateOp> {
        self.nodes.iter().find_map(|n| match &n.operator {
            Operator::Aggregate(a) => Some(a),
            _ => None,
        })
    }

    /// Validate the whole chain against the input stream's schema and return
    /// the schema of the output stream.
    ///
    /// # Errors
    /// Returns the first validation error encountered along the chain.
    pub fn output_schema(&self, input: &Schema) -> Result<Schema, DsmsError> {
        input.validate().map_err(DsmsError::InvalidGraph)?;
        let mut current = input.clone();
        for node in &self.nodes {
            current = node.operator.output_schema(&current)?;
        }
        Ok(current)
    }

    /// Validate the chain without materialising the output schema.
    ///
    /// # Errors
    /// Same as [`QueryGraph::output_schema`].
    pub fn validate(&self, input: &Schema) -> Result<(), DsmsError> {
        self.output_schema(input).map(|_| ())
    }

    /// A canonical textual signature of the whole graph, usable as a
    /// plan-cache key: the stream name lowercased (stream registration is
    /// case-sensitive but the access-control layer canonicalizes stream
    /// names to lowercase), followed by the exact `Display` form of every
    /// operator box in order. Two graphs with equal signatures compute the
    /// same derived stream, so they can share one deployment; the converse
    /// does not hold (semantically equal but syntactically different filters
    /// get distinct signatures — missed sharing, never wrong sharing).
    #[must_use]
    pub fn canonical_signature(&self) -> String {
        use std::fmt::Write;
        let mut sig = self.stream.to_ascii_lowercase();
        for node in &self.nodes {
            let _ = write!(sig, " -> {}", node.operator);
        }
        sig
    }

    /// A short structural signature — which box kinds appear, in order —
    /// used by the workload generator to label query-graph compositions
    /// (`FB`, `MB`, `AB`, `FB+MB`, ... as in Table 3).
    #[must_use]
    pub fn composition(&self) -> String {
        let mut parts = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let tag = match node.operator {
                Operator::Filter(_) => "FB",
                Operator::Map(_) => "MB",
                Operator::Aggregate(_) => "AB",
            };
            if !parts.contains(&tag) {
                parts.push(tag);
            }
        }
        parts.join("+")
    }
}

impl fmt::Display for QueryGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.stream)?;
        for node in &self.nodes {
            write!(f, " -> {}", node.operator)?;
        }
        Ok(())
    }
}

/// Fluent construction of query graphs.
///
/// ```
/// use exacml_dsms::prelude::*;
/// let graph = QueryGraphBuilder::on_stream("weather")
///     .filter_str("rainrate > 5").unwrap()
///     .map(["samplingtime", "rainrate", "windspeed"])
///     .aggregate(
///         WindowSpec::tuples(5, 2),
///         vec![AggSpec::new("rainrate", AggFunc::Avg)],
///     )
///     .build();
/// assert_eq!(graph.len(), 3);
/// assert_eq!(graph.composition(), "FB+MB+AB");
/// ```
#[derive(Debug, Clone)]
pub struct QueryGraphBuilder {
    stream: String,
    operators: Vec<Operator>,
}

impl QueryGraphBuilder {
    /// Start a graph over the named input stream.
    #[must_use]
    pub fn on_stream(stream: impl Into<String>) -> Self {
        QueryGraphBuilder { stream: stream.into(), operators: Vec::new() }
    }

    /// Append a filter box with an already-parsed condition.
    #[must_use]
    pub fn filter(mut self, op: FilterOp) -> Self {
        self.operators.push(Operator::Filter(op));
        self
    }

    /// Append a filter box from a textual condition.
    ///
    /// # Errors
    /// Returns [`DsmsError::BadCondition`] when the text does not parse.
    pub fn filter_str(self, condition: &str) -> Result<Self, DsmsError> {
        let op = FilterOp::parse(condition)?;
        Ok(self.filter(op))
    }

    /// Append a map (projection) box.
    #[must_use]
    pub fn map<I, S>(mut self, attributes: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.operators.push(Operator::Map(MapOp::new(attributes)));
        self
    }

    /// Append a window-based aggregation box.
    #[must_use]
    pub fn aggregate(mut self, window: WindowSpec, specs: Vec<AggSpec>) -> Self {
        self.operators.push(Operator::Aggregate(AggregateOp::new(window, specs)));
        self
    }

    /// Append an arbitrary operator box.
    #[must_use]
    pub fn operator(mut self, op: Operator) -> Self {
        self.operators.push(op);
        self
    }

    /// Finish building.
    #[must_use]
    pub fn build(self) -> QueryGraph {
        QueryGraph::from_operators(self.stream, self.operators)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::aggregate::AggFunc;
    use crate::value::DataType;

    fn example1_graph() -> QueryGraph {
        QueryGraphBuilder::on_stream("weather")
            .filter_str("rainrate > 5")
            .unwrap()
            .map(["samplingtime", "rainrate", "windspeed"])
            .aggregate(
                WindowSpec::tuples(5, 2),
                vec![
                    AggSpec::new("samplingtime", AggFunc::LastValue),
                    AggSpec::new("rainrate", AggFunc::Avg),
                    AggSpec::new("windspeed", AggFunc::Max),
                ],
            )
            .build()
    }

    #[test]
    fn builder_produces_figure1_chain() {
        let g = example1_graph();
        assert_eq!(g.stream, "weather");
        assert_eq!(g.len(), 3);
        assert_eq!(g.composition(), "FB+MB+AB");
        assert!(g.filter().is_some());
        assert!(g.map().is_some());
        assert!(g.aggregate().is_some());
        assert_eq!(g.nodes[0].id, 0);
        assert_eq!(g.nodes[2].id, 2);
    }

    #[test]
    fn output_schema_of_figure1() {
        let g = example1_graph();
        let out = g.output_schema(&Schema::weather_example()).unwrap();
        assert_eq!(out.field_names(), vec!["lastvalsamplingtime", "avgrainrate", "maxwindspeed"]);
    }

    #[test]
    fn identity_graph_passes_schema_through() {
        let g = QueryGraph::identity("weather");
        assert!(g.is_empty());
        assert_eq!(g.output_schema(&Schema::weather_example()).unwrap(), Schema::weather_example());
        assert_eq!(g.composition(), "");
    }

    #[test]
    fn validation_catches_mid_chain_errors() {
        // The map drops `windspeed`, so aggregating over it must fail.
        let g = QueryGraphBuilder::on_stream("weather")
            .map(["samplingtime", "rainrate"])
            .aggregate(WindowSpec::tuples(5, 2), vec![AggSpec::new("windspeed", AggFunc::Max)])
            .build();
        assert!(matches!(
            g.validate(&Schema::weather_example()),
            Err(DsmsError::UnknownAttribute { attribute, .. }) if attribute == "windspeed"
        ));
    }

    #[test]
    fn validation_rejects_invalid_input_schema() {
        let g = QueryGraph::identity("s");
        let bad = Schema::from_pairs([("a", DataType::Int), ("a", DataType::Int)]);
        assert!(matches!(g.validate(&bad), Err(DsmsError::InvalidGraph(_))));
    }

    #[test]
    fn composition_labels_match_table3_categories() {
        let schema_attrs = ["samplingtime", "rainrate"];
        let fb = QueryGraphBuilder::on_stream("s").filter_str("rainrate > 1").unwrap().build();
        let mb = QueryGraphBuilder::on_stream("s").map(schema_attrs).build();
        let ab = QueryGraphBuilder::on_stream("s")
            .aggregate(WindowSpec::tuples(3, 1), vec![AggSpec::new("rainrate", AggFunc::Avg)])
            .build();
        assert_eq!(fb.composition(), "FB");
        assert_eq!(mb.composition(), "MB");
        assert_eq!(ab.composition(), "AB");
        let fb_mb = QueryGraphBuilder::on_stream("s")
            .filter_str("rainrate > 1")
            .unwrap()
            .map(schema_attrs)
            .build();
        assert_eq!(fb_mb.composition(), "FB+MB");
    }

    #[test]
    fn canonical_signature_ignores_stream_case_but_not_literals() {
        let lower = QueryGraphBuilder::on_stream("weather").filter_str("s = 'X'").unwrap().build();
        let upper = QueryGraphBuilder::on_stream("Weather").filter_str("s = 'X'").unwrap().build();
        assert_eq!(lower.canonical_signature(), upper.canonical_signature());
        // Text literals differing only in case are semantically different
        // filters and must NOT share a plan.
        let other = QueryGraphBuilder::on_stream("weather").filter_str("s = 'x'").unwrap().build();
        assert_ne!(lower.canonical_signature(), other.canonical_signature());
    }

    #[test]
    fn display_lists_chain() {
        let g = example1_graph();
        let s = g.to_string();
        assert!(s.starts_with("weather ->"));
        assert!(s.contains("Filter"));
        assert!(s.contains("Aggregate"));
    }
}
