//! Stream schemas.
//!
//! In the Aurora model every data stream is an append-only sequence of
//! tuples that share a schema. The paper's running example (Example 1) uses
//! the National Environmental Agency weather schema
//! `(samplingtime, temperature, humidity, solarradiation, rainrate,
//! windspeed, winddirection, barometer)`.

use crate::value::DataType;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// A named, typed column of a stream schema.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Field {
    /// Attribute name (lower-case by convention).
    pub name: String,
    /// Attribute type.
    pub data_type: DataType,
}

impl Field {
    /// Construct a field.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Field { name: name.into(), data_type }
    }
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.name, self.data_type)
    }
}

/// An ordered collection of fields describing the tuples of one stream.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Build a schema from fields. Duplicate field names are rejected at
    /// validation time ([`Schema::validate`]), not construction time, so
    /// that StreamSQL parsing can surface a proper error.
    #[must_use]
    pub fn new(fields: Vec<Field>) -> Self {
        Schema { fields }
    }

    /// Convenience constructor from `(name, type)` pairs.
    pub fn from_pairs<I, S>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (S, DataType)>,
        S: Into<String>,
    {
        Schema { fields: pairs.into_iter().map(|(n, t)| Field::new(n, t)).collect() }
    }

    /// The weather-station schema of the paper's Example 1.
    #[must_use]
    pub fn weather_example() -> Self {
        Schema::from_pairs([
            ("samplingtime", DataType::Timestamp),
            ("temperature", DataType::Double),
            ("humidity", DataType::Double),
            ("solarradiation", DataType::Double),
            ("rainrate", DataType::Double),
            ("windspeed", DataType::Double),
            ("winddirection", DataType::Int),
            ("barometer", DataType::Double),
        ])
    }

    /// The GPS track schema mentioned in the evaluation ("GPS track
    /// information from personal mobile devices").
    #[must_use]
    pub fn gps_example() -> Self {
        Schema::from_pairs([
            ("samplingtime", DataType::Timestamp),
            ("deviceid", DataType::Text),
            ("latitude", DataType::Double),
            ("longitude", DataType::Double),
            ("speed", DataType::Double),
            ("heading", DataType::Int),
        ])
    }

    /// Number of fields.
    #[must_use]
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the schema has no fields.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// All fields in declaration order.
    #[must_use]
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Field names in declaration order.
    #[must_use]
    pub fn field_names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }

    /// Position of a field by (case-insensitive) name.
    #[must_use]
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name.eq_ignore_ascii_case(name))
    }

    /// Field by name.
    #[must_use]
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.index_of(name).map(|i| &self.fields[i])
    }

    /// Whether the schema contains a field of the given name.
    #[must_use]
    pub fn contains(&self, name: &str) -> bool {
        self.index_of(name).is_some()
    }

    /// Project the schema onto a subset of attributes (in the order given).
    /// Unknown attributes are skipped; callers that need strict validation
    /// use [`Schema::contains`] first (the query-graph validator does).
    #[must_use]
    pub fn project(&self, attrs: &[String]) -> Schema {
        let fields = attrs.iter().filter_map(|name| self.field(name).cloned()).collect();
        Schema { fields }
    }

    /// The first field of type [`DataType::Timestamp`], used as the default
    /// ordering attribute for time-based windows.
    #[must_use]
    pub fn timestamp_field(&self) -> Option<&Field> {
        self.fields.iter().find(|f| f.data_type == DataType::Timestamp)
    }

    /// Validate the schema: non-empty, no duplicate field names.
    ///
    /// # Errors
    /// Returns a human-readable description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.fields.is_empty() {
            return Err("schema has no fields".to_string());
        }
        for (i, f) in self.fields.iter().enumerate() {
            if f.name.trim().is_empty() {
                return Err(format!("field #{i} has an empty name"));
            }
            if self.fields[..i].iter().any(|g| g.name.eq_ignore_ascii_case(&f.name)) {
                return Err(format!("duplicate field name '{}'", f.name));
            }
        }
        Ok(())
    }

    /// Share the schema behind an `Arc` (tuples keep a cheap reference).
    #[must_use]
    pub fn shared(self) -> Arc<Schema> {
        Arc::new(self)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.fields.iter().map(ToString::to_string).collect();
        write!(f, "({})", parts.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weather_schema_matches_paper() {
        let s = Schema::weather_example();
        assert_eq!(s.len(), 8);
        assert!(s.contains("rainrate"));
        assert!(s.contains("windspeed"));
        assert_eq!(s.field("samplingtime").unwrap().data_type, DataType::Timestamp);
        assert_eq!(s.field("winddirection").unwrap().data_type, DataType::Int);
        s.validate().unwrap();
    }

    #[test]
    fn index_and_lookup_are_case_insensitive() {
        let s = Schema::weather_example();
        assert_eq!(s.index_of("RainRate"), s.index_of("rainrate"));
        assert!(s.contains("WINDSPEED"));
    }

    #[test]
    fn projection_preserves_requested_order() {
        let s = Schema::weather_example();
        let p = s.project(&["rainrate".into(), "samplingtime".into()]);
        assert_eq!(p.field_names(), vec!["rainrate", "samplingtime"]);
    }

    #[test]
    fn projection_skips_unknown() {
        let s = Schema::weather_example();
        let p = s.project(&["rainrate".into(), "nosuch".into()]);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn validation_rejects_duplicates_and_empty() {
        assert!(Schema::new(vec![]).validate().is_err());
        let dup = Schema::from_pairs([("a", DataType::Int), ("A", DataType::Double)]);
        assert!(dup.validate().unwrap_err().contains("duplicate"));
        let blank = Schema::from_pairs([("", DataType::Int)]);
        assert!(blank.validate().is_err());
    }

    #[test]
    fn timestamp_field_detection() {
        assert_eq!(Schema::weather_example().timestamp_field().unwrap().name, "samplingtime");
        let s = Schema::from_pairs([("a", DataType::Int)]);
        assert!(s.timestamp_field().is_none());
    }

    #[test]
    fn display_is_readable() {
        let s = Schema::from_pairs([("a", DataType::Int), ("b", DataType::Text)]);
        assert_eq!(s.to_string(), "(a int, b string)");
    }
}
