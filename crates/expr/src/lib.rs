//! # exacml-expr — predicate engine for stream access control
//!
//! This crate implements the boolean-expression machinery that the eXACML+
//! paper (Section 3.5) relies on for merging filter conditions and detecting
//! **empty-result (NR)** and **partial-result (PR)** conflicts between a
//! data-owner's policy and a user's customised continuous query.
//!
//! The building blocks are:
//!
//! * [`ast`] — *simple expressions* `x op v` (with `op ∈ {<,>,≤,≥,=,≠}`) and
//!   *complex expressions* built from `NOT`, `AND`, `OR`.
//! * [`lexer`] / [`parser`] — a small parser for the textual condition syntax
//!   used inside policy obligations and user queries
//!   (e.g. `rainrate > 5 AND (windspeed <= 30 OR NOT station = 'S11')`).
//! * [`normalize`] — NOT-elimination using De Morgan's laws and the paper's
//!   Table 2 operator-negation rules.
//! * [`postfix`] / [`dnf`] — the infix → postfix → disjunctive-normal-form
//!   pipeline described in Section 3.5 (Step 2).
//! * [`check`] — `checkTwoSimpleExpression` and the conjunct/DNF-level
//!   aggregation that produces `Ok` / `PR` / `NR` verdicts (Step 3, Figure 5).
//! * [`mod@simplify`] — conjunct-level interval tightening used when two filter
//!   operators are merged (Section 3.1).
//! * [`eval`] — evaluation of expressions against attribute bindings; used by
//!   the DSMS filter operator and by the property tests that prove the DNF
//!   conversion preserves truth tables.
//!
//! ```
//! use exacml_expr::prelude::*;
//!
//! let policy = parse_expr("rainrate > 8").unwrap();
//! let user = parse_expr("rainrate > 5").unwrap();
//! let report = analyze_merge(&policy, &user);
//! assert_eq!(report.verdict, Verdict::Pr); // some tuples the user wants are hidden
//! ```

pub mod ast;
pub mod check;
pub mod dnf;
pub mod error;
pub mod eval;
pub mod lexer;
pub mod normalize;
pub mod parser;
pub mod postfix;
pub mod simplify;

pub use ast::{CmpOp, Expr, Origin, Scalar, SimpleExpr};
pub use check::{analyze_merge, check_two_simple, ConflictReport, Verdict};
pub use dnf::{Conjunct, Dnf};
pub use error::ExprError;
pub use eval::{Bindings, MapBindings};
pub use parser::parse_expr;
pub use simplify::simplify;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::ast::{CmpOp, Expr, Origin, Scalar, SimpleExpr};
    pub use crate::check::{analyze_merge, check_two_simple, ConflictReport, Verdict};
    pub use crate::dnf::{Conjunct, Dnf};
    pub use crate::error::ExprError;
    pub use crate::eval::{Bindings, MapBindings};
    pub use crate::parser::parse_expr;
    pub use crate::simplify::simplify;
}
