//! NOT-elimination (Step 1 of the Section 3.5 procedure).
//!
//! `NOT` is pushed inward using De Morgan's laws for `AND`/`OR` and the
//! paper's Table 2 rules for simple expressions (`NOT (x > v)` ≡ `x <= v`,
//! and so on). The result contains no `Not` node at all, which is what the
//! postfix/DNF machinery in [`crate::dnf`] expects.

use crate::ast::Expr;

/// Rewrite `expr` into an equivalent expression without any `NOT` node.
///
/// The rewrite is purely structural and preserves the truth table (verified
/// by the property tests at the bottom of this module and in `tests/`).
#[must_use]
pub fn eliminate_not(expr: &Expr) -> Expr {
    push_not(expr, false)
}

/// Recursive helper: `negated` says whether an odd number of enclosing NOTs
/// applies to the current node.
fn push_not(expr: &Expr, negated: bool) -> Expr {
    match expr {
        Expr::True => {
            if negated {
                Expr::False
            } else {
                Expr::True
            }
        }
        Expr::False => {
            if negated {
                Expr::True
            } else {
                Expr::False
            }
        }
        Expr::Simple(s) => {
            if negated {
                Expr::Simple(s.negate())
            } else {
                Expr::Simple(s.clone())
            }
        }
        Expr::Not(inner) => push_not(inner, !negated),
        Expr::And(a, b) => {
            let left = push_not(a, negated);
            let right = push_not(b, negated);
            if negated {
                // De Morgan: NOT (a AND b) = (NOT a) OR (NOT b)
                Expr::Or(Box::new(left), Box::new(right))
            } else {
                Expr::And(Box::new(left), Box::new(right))
            }
        }
        Expr::Or(a, b) => {
            let left = push_not(a, negated);
            let right = push_not(b, negated);
            if negated {
                // De Morgan: NOT (a OR b) = (NOT a) AND (NOT b)
                Expr::And(Box::new(left), Box::new(right))
            } else {
                Expr::Or(Box::new(left), Box::new(right))
            }
        }
    }
}

/// Returns `true` if the expression contains no `Not` node.
#[must_use]
pub fn is_not_free(expr: &Expr) -> bool {
    match expr {
        Expr::True | Expr::False | Expr::Simple(_) => true,
        Expr::Not(_) => false,
        Expr::And(a, b) | Expr::Or(a, b) => is_not_free(a) && is_not_free(b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{Bindings, MapBindings};
    use crate::parser::parse_expr;

    #[test]
    fn simple_negation_uses_table2() {
        let e = parse_expr("NOT (a > 5)").unwrap();
        assert_eq!(eliminate_not(&e), parse_expr("a <= 5").unwrap());
        let e = parse_expr("NOT (a != 40)").unwrap();
        assert_eq!(eliminate_not(&e), parse_expr("a = 40").unwrap());
    }

    #[test]
    fn de_morgan_over_and() {
        let e = parse_expr("NOT (a > 5 AND b < 3)").unwrap();
        assert_eq!(eliminate_not(&e), parse_expr("a <= 5 OR b >= 3").unwrap());
    }

    #[test]
    fn de_morgan_over_or() {
        let e = parse_expr("NOT (a = 1 OR b = 2)").unwrap();
        assert_eq!(eliminate_not(&e), parse_expr("a != 1 AND b != 2").unwrap());
    }

    #[test]
    fn double_negation_cancels() {
        let e = parse_expr("NOT (NOT (a > 5))").unwrap();
        assert_eq!(eliminate_not(&e), parse_expr("a > 5").unwrap());
    }

    #[test]
    fn paper_example4_elimination() {
        // P = C1 AND C2 with C1 = (a>20 AND a<30) OR NOT(a != 40),
        // C2 = NOT(a>=10) AND b=20.
        // After elimination: P1 = ((a>20 AND a<30) OR a=40) AND (a<10 AND b=20).
        let p = parse_expr("((a > 20 AND a < 30) OR NOT (a != 40)) AND (NOT (a >= 10) AND b = 20)")
            .unwrap();
        let p1 = eliminate_not(&p);
        assert!(is_not_free(&p1));
        let expected =
            parse_expr("((a > 20 AND a < 30) OR a = 40) AND (a < 10 AND b = 20)").unwrap();
        assert_eq!(p1, expected);
    }

    #[test]
    fn constants_negate() {
        assert_eq!(eliminate_not(&parse_expr("NOT TRUE").unwrap()), Expr::False);
        assert_eq!(eliminate_not(&parse_expr("NOT FALSE").unwrap()), Expr::True);
    }

    #[test]
    fn truth_table_preserved_on_small_grid() {
        // Exhaustively compare the original and rewritten expression on a
        // small grid of attribute values.
        let exprs = [
            "NOT (a > 5 AND (b < 3 OR NOT a = 4))",
            "NOT (NOT (a >= 2) OR (b != 1 AND NOT b <= 4))",
            "NOT ((a = 1 OR a = 2) AND NOT (b > 0))",
        ];
        for src in exprs {
            let original = parse_expr(src).unwrap();
            let rewritten = eliminate_not(&original);
            assert!(is_not_free(&rewritten), "{src} still contains NOT");
            for a in -1..=6 {
                for b in -1..=6 {
                    let bindings = MapBindings::new()
                        .with_number("a", f64::from(a))
                        .with_number("b", f64::from(b));
                    assert_eq!(
                        crate::eval::eval(&original, &bindings),
                        crate::eval::eval(&rewritten, &bindings),
                        "mismatch for {src} at a={a}, b={b}"
                    );
                    let _ = bindings.lookup("a");
                }
            }
        }
    }
}
