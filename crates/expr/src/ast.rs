//! Abstract syntax for filter conditions.
//!
//! The paper's Section 3.5 defines two kinds of expressions:
//!
//! * a **simple expression** `x op v` where `x` is a stream attribute,
//!   `op ∈ {<, >, ≤, ≥, =, ≠}` and `v` is a number, or a string (strings only
//!   with `=` / `≠`);
//! * a **complex expression** formed by connecting simple expressions with
//!   `NOT`, `AND` and `OR`.
//!
//! [`Expr`] models complex expressions, [`SimpleExpr`] the leaves.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A comparison operator of a simple expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `=`
    Eq,
    /// `!=`
    Ne,
}

impl CmpOp {
    /// The negated operator, per Table 2 of the paper
    /// (`NOT (x > v)` ≡ `x <= v`, etc.).
    #[must_use]
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Ge => CmpOp::Lt,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
        }
    }

    /// Whether this operator may be applied to string values.
    /// The paper restricts strings to equality and inequality.
    #[must_use]
    pub fn valid_for_strings(self) -> bool {
        matches!(self, CmpOp::Eq | CmpOp::Ne)
    }

    /// All six operators, useful for exhaustive testing of the
    /// `checkTwoSimpleExpression` matrix.
    #[must_use]
    pub fn all() -> [CmpOp; 6] {
        [CmpOp::Lt, CmpOp::Gt, CmpOp::Le, CmpOp::Ge, CmpOp::Eq, CmpOp::Ne]
    }

    /// Apply the comparison to two ordered values.
    #[must_use]
    pub fn apply_ord(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::{Equal, Greater, Less};
        match self {
            CmpOp::Lt => ord == Less,
            CmpOp::Gt => ord == Greater,
            CmpOp::Le => ord != Greater,
            CmpOp::Ge => ord != Less,
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Lt => "<",
            CmpOp::Gt => ">",
            CmpOp::Le => "<=",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
        };
        f.write_str(s)
    }
}

/// The constant side of a simple expression: a number or a string.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Scalar {
    /// A numeric constant. All numerics are carried as `f64`, matching the
    /// DSMS `double` columns the paper's weather example uses.
    Number(f64),
    /// A string constant (quoted in the surface syntax).
    Text(String),
}

impl Scalar {
    /// Numeric value, if this scalar is a number.
    #[must_use]
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Scalar::Number(n) => Some(*n),
            Scalar::Text(_) => None,
        }
    }

    /// String value, if this scalar is text.
    #[must_use]
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Scalar::Number(_) => None,
            Scalar::Text(s) => Some(s.as_str()),
        }
    }

    /// True if both scalars are of the same kind (number vs text).
    #[must_use]
    pub fn same_kind(&self, other: &Scalar) -> bool {
        matches!(
            (self, other),
            (Scalar::Number(_), Scalar::Number(_)) | (Scalar::Text(_), Scalar::Text(_))
        )
    }

    /// Total ordering between scalars of the same kind.
    /// Returns `None` when the kinds differ or a number is NaN.
    #[must_use]
    pub fn partial_cmp_same_kind(&self, other: &Scalar) -> Option<std::cmp::Ordering> {
        match (self, other) {
            (Scalar::Number(a), Scalar::Number(b)) => a.partial_cmp(b),
            (Scalar::Text(a), Scalar::Text(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }
}

impl fmt::Display for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scalar::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Scalar::Text(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<f64> for Scalar {
    fn from(v: f64) -> Self {
        Scalar::Number(v)
    }
}

impl From<i64> for Scalar {
    fn from(v: i64) -> Self {
        Scalar::Number(v as f64)
    }
}

impl From<&str> for Scalar {
    fn from(v: &str) -> Self {
        Scalar::Text(v.to_string())
    }
}

impl From<String> for Scalar {
    fn from(v: String) -> Self {
        Scalar::Text(v)
    }
}

/// Where a simple expression came from. The PR/NR analysis is asymmetric:
/// a *policy* predicate narrowing a *user* predicate is a partial-result
/// situation, while the reverse is perfectly fine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Origin {
    /// Derived from a policy obligation.
    Policy,
    /// Supplied by the user's customised query.
    User,
    /// Origin unknown or irrelevant (e.g. stand-alone parsing).
    #[default]
    Unspecified,
}

/// A simple expression `attr op value`, optionally tagged with its origin.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimpleExpr {
    /// Attribute name (a column of the stream schema).
    pub attr: String,
    /// Comparison operator.
    pub op: CmpOp,
    /// Constant operand.
    pub value: Scalar,
    /// Provenance of the predicate (policy vs user query).
    pub origin: Origin,
}

impl SimpleExpr {
    /// Create a new simple expression with [`Origin::Unspecified`].
    pub fn new(attr: impl Into<String>, op: CmpOp, value: impl Into<Scalar>) -> Self {
        SimpleExpr { attr: attr.into(), op, value: value.into(), origin: Origin::Unspecified }
    }

    /// Create a new simple expression with an explicit origin.
    pub fn with_origin(
        attr: impl Into<String>,
        op: CmpOp,
        value: impl Into<Scalar>,
        origin: Origin,
    ) -> Self {
        SimpleExpr { attr: attr.into(), op, value: value.into(), origin }
    }

    /// Return a copy with the origin replaced.
    #[must_use]
    pub fn tagged(mut self, origin: Origin) -> Self {
        self.origin = origin;
        self
    }

    /// The negation of this simple expression, using Table 2 rules.
    #[must_use]
    pub fn negate(&self) -> SimpleExpr {
        SimpleExpr {
            attr: self.attr.clone(),
            op: self.op.negate(),
            value: self.value.clone(),
            origin: self.origin,
        }
    }

    /// Whether the expression is well formed: ordering operators are only
    /// applied to numbers.
    #[must_use]
    pub fn is_well_formed(&self) -> bool {
        match self.value {
            Scalar::Number(_) => true,
            Scalar::Text(_) => self.op.valid_for_strings(),
        }
    }
}

impl fmt::Display for SimpleExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.attr, self.op, self.value)
    }
}

/// A complex expression: the boolean combination of simple expressions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// Constant true (the neutral element for AND; an absent filter).
    True,
    /// Constant false.
    False,
    /// A leaf simple expression.
    Simple(SimpleExpr),
    /// Logical negation.
    Not(Box<Expr>),
    /// Logical conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Logical disjunction.
    Or(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Leaf constructor.
    pub fn simple(attr: impl Into<String>, op: CmpOp, value: impl Into<Scalar>) -> Expr {
        Expr::Simple(SimpleExpr::new(attr, op, value))
    }

    /// `self AND other`, with trivial constant folding.
    #[must_use]
    pub fn and(self, other: Expr) -> Expr {
        match (self, other) {
            (Expr::True, e) | (e, Expr::True) => e,
            (Expr::False, _) | (_, Expr::False) => Expr::False,
            (a, b) => Expr::And(Box::new(a), Box::new(b)),
        }
    }

    /// `self OR other`, with trivial constant folding.
    #[must_use]
    pub fn or(self, other: Expr) -> Expr {
        match (self, other) {
            (Expr::False, e) | (e, Expr::False) => e,
            (Expr::True, _) | (_, Expr::True) => Expr::True,
            (a, b) => Expr::Or(Box::new(a), Box::new(b)),
        }
    }

    /// `NOT self`, with trivial constant folding.
    ///
    /// Named after the paper's connective; the `std::ops::Not` trait is not
    /// implemented because this is a by-value builder, not an operator.
    #[allow(clippy::should_implement_trait)]
    #[must_use]
    pub fn not(self) -> Expr {
        match self {
            Expr::True => Expr::False,
            Expr::False => Expr::True,
            Expr::Not(inner) => *inner,
            e => Expr::Not(Box::new(e)),
        }
    }

    /// Tag every simple expression in the tree with `origin`.
    #[must_use]
    pub fn with_origin(self, origin: Origin) -> Expr {
        match self {
            Expr::Simple(s) => Expr::Simple(s.tagged(origin)),
            Expr::Not(e) => Expr::Not(Box::new(e.with_origin(origin))),
            Expr::And(a, b) => {
                Expr::And(Box::new(a.with_origin(origin)), Box::new(b.with_origin(origin)))
            }
            Expr::Or(a, b) => {
                Expr::Or(Box::new(a.with_origin(origin)), Box::new(b.with_origin(origin)))
            }
            other => other,
        }
    }

    /// All attribute names referenced by the expression (duplicates removed,
    /// order of first appearance preserved).
    #[must_use]
    pub fn attributes(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        self.visit_simple(&mut |s| {
            if !out.iter().any(|a| a == &s.attr) {
                out.push(s.attr.clone());
            }
        });
        out
    }

    /// Number of simple-expression leaves.
    #[must_use]
    pub fn leaf_count(&self) -> usize {
        let mut n = 0usize;
        self.visit_simple(&mut |_| n += 1);
        n
    }

    /// Depth-first visit of every simple expression leaf.
    pub fn visit_simple(&self, f: &mut impl FnMut(&SimpleExpr)) {
        match self {
            Expr::Simple(s) => f(s),
            Expr::Not(e) => e.visit_simple(f),
            Expr::And(a, b) | Expr::Or(a, b) => {
                a.visit_simple(f);
                b.visit_simple(f);
            }
            Expr::True | Expr::False => {}
        }
    }

    /// Whether every leaf is well formed (see [`SimpleExpr::is_well_formed`]).
    #[must_use]
    pub fn is_well_formed(&self) -> bool {
        let mut ok = true;
        self.visit_simple(&mut |s| ok &= s.is_well_formed());
        ok
    }
}

impl From<SimpleExpr> for Expr {
    fn from(s: SimpleExpr) -> Self {
        Expr::Simple(s)
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::True => f.write_str("TRUE"),
            Expr::False => f.write_str("FALSE"),
            Expr::Simple(s) => write!(f, "{s}"),
            Expr::Not(e) => write!(f, "NOT ({e})"),
            Expr::And(a, b) => write!(f, "({a}) AND ({b})"),
            Expr::Or(a, b) => write!(f, "({a}) OR ({b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_negation_rules() {
        // The exact Table 2 mapping from the paper.
        assert_eq!(CmpOp::Gt.negate(), CmpOp::Le);
        assert_eq!(CmpOp::Lt.negate(), CmpOp::Ge);
        assert_eq!(CmpOp::Ge.negate(), CmpOp::Lt);
        assert_eq!(CmpOp::Le.negate(), CmpOp::Gt);
        assert_eq!(CmpOp::Eq.negate(), CmpOp::Ne);
        assert_eq!(CmpOp::Ne.negate(), CmpOp::Eq);
    }

    #[test]
    fn negation_is_involutive() {
        for op in CmpOp::all() {
            assert_eq!(op.negate().negate(), op);
        }
    }

    #[test]
    fn string_ops_restricted() {
        assert!(CmpOp::Eq.valid_for_strings());
        assert!(CmpOp::Ne.valid_for_strings());
        assert!(!CmpOp::Lt.valid_for_strings());
        assert!(!CmpOp::Ge.valid_for_strings());
    }

    #[test]
    fn simple_expr_well_formedness() {
        assert!(SimpleExpr::new("a", CmpOp::Lt, 3.0).is_well_formed());
        assert!(SimpleExpr::new("a", CmpOp::Eq, "x").is_well_formed());
        assert!(!SimpleExpr::new("a", CmpOp::Lt, "x").is_well_formed());
    }

    #[test]
    fn constant_folding_in_builders() {
        let e = Expr::simple("a", CmpOp::Gt, 1.0);
        assert_eq!(e.clone().and(Expr::True), e);
        assert_eq!(e.clone().and(Expr::False), Expr::False);
        assert_eq!(e.clone().or(Expr::False), e);
        assert_eq!(e.clone().or(Expr::True), Expr::True);
        assert_eq!(Expr::True.not(), Expr::False);
        assert_eq!(e.clone().not().not(), e);
    }

    #[test]
    fn attributes_and_leaf_count() {
        let e = Expr::simple("a", CmpOp::Gt, 1.0)
            .and(Expr::simple("b", CmpOp::Lt, 2.0).or(Expr::simple("a", CmpOp::Eq, 3.0)));
        assert_eq!(e.attributes(), vec!["a".to_string(), "b".to_string()]);
        assert_eq!(e.leaf_count(), 3);
    }

    #[test]
    fn origin_tagging_reaches_all_leaves() {
        let e = Expr::simple("a", CmpOp::Gt, 1.0)
            .and(Expr::simple("b", CmpOp::Lt, 2.0))
            .with_origin(Origin::Policy);
        let mut seen = 0;
        e.visit_simple(&mut |s| {
            assert_eq!(s.origin, Origin::Policy);
            seen += 1;
        });
        assert_eq!(seen, 2);
    }

    #[test]
    fn display_round_trips_visually() {
        let e = Expr::simple("rainrate", CmpOp::Gt, 5.0);
        assert_eq!(e.to_string(), "rainrate > 5");
        let s = SimpleExpr::new("station", CmpOp::Eq, "S11");
        assert_eq!(s.to_string(), "station = 'S11'");
    }

    #[test]
    fn scalar_ordering() {
        use std::cmp::Ordering;
        assert_eq!(
            Scalar::Number(1.0).partial_cmp_same_kind(&Scalar::Number(2.0)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Scalar::Text("a".into()).partial_cmp_same_kind(&Scalar::Text("a".into())),
            Some(Ordering::Equal)
        );
        assert_eq!(Scalar::Number(1.0).partial_cmp_same_kind(&Scalar::Text("a".into())), None);
    }

    #[test]
    fn cmp_op_apply_ord() {
        use std::cmp::Ordering::*;
        assert!(CmpOp::Lt.apply_ord(Less));
        assert!(!CmpOp::Lt.apply_ord(Equal));
        assert!(CmpOp::Le.apply_ord(Equal));
        assert!(CmpOp::Ge.apply_ord(Greater));
        assert!(CmpOp::Ne.apply_ord(Less));
        assert!(CmpOp::Eq.apply_ord(Equal));
    }
}
