//! Recursive-descent parser for filter conditions.
//!
//! Grammar (standard precedence: `NOT` binds tighter than `AND`, which binds
//! tighter than `OR`):
//!
//! ```text
//! expr      := or_expr
//! or_expr   := and_expr ( OR and_expr )*
//! and_expr  := not_expr ( AND not_expr )*
//! not_expr  := NOT not_expr | primary
//! primary   := '(' expr ')' | TRUE | FALSE | simple
//! simple    := IDENT op literal | literal op IDENT      (the latter is flipped)
//! op        := '<' | '>' | '<=' | '>=' | '=' | '!='
//! literal   := NUMBER | STRING
//! ```

use crate::ast::{CmpOp, Expr, Scalar, SimpleExpr};
use crate::error::ExprError;
use crate::lexer::{tokenize, Spanned, Token};

/// Parse a condition string into an [`Expr`].
///
/// # Errors
/// Returns [`ExprError`] on lexical or syntactic problems, and on
/// ill-typed simple expressions (ordering operators on strings).
pub fn parse_expr(input: &str) -> Result<Expr, ExprError> {
    let tokens = tokenize(input)?;
    if tokens.is_empty() {
        return Err(ExprError::EmptyExpression);
    }
    let mut parser = Parser { tokens, pos: 0 };
    let expr = parser.parse_or()?;
    if parser.pos != parser.tokens.len() {
        let t = &parser.tokens[parser.pos];
        return Err(ExprError::UnexpectedToken {
            expected: "end of input".into(),
            found: format!("{:?}", t.token),
            position: t.position,
        });
    }
    if !expr.is_well_formed() {
        // Locate the first offending leaf for the error message.
        let mut bad: Option<SimpleExpr> = None;
        expr.visit_simple(&mut |s| {
            if bad.is_none() && !s.is_well_formed() {
                bad = Some(s.clone());
            }
        });
        let s = bad.expect("ill-formed expr must contain an ill-formed leaf");
        return Err(ExprError::InvalidStringComparison { attribute: s.attr, op: s.op.to_string() });
    }
    Ok(expr)
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Spanned> {
        self.tokens.get(self.pos)
    }

    fn advance(&mut self) -> Option<Spanned> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, expected: &Token, what: &str) -> Result<(), ExprError> {
        match self.advance() {
            Some(t) if &t.token == expected => Ok(()),
            Some(t) => Err(ExprError::UnexpectedToken {
                expected: what.into(),
                found: format!("{:?}", t.token),
                position: t.position,
            }),
            None => Err(ExprError::UnexpectedEof { expected: what.into() }),
        }
    }

    fn parse_or(&mut self) -> Result<Expr, ExprError> {
        let mut left = self.parse_and()?;
        while matches!(self.peek().map(|t| &t.token), Some(Token::Or)) {
            self.advance();
            let right = self.parse_and()?;
            left = Expr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr, ExprError> {
        let mut left = self.parse_not()?;
        while matches!(self.peek().map(|t| &t.token), Some(Token::And)) {
            self.advance();
            let right = self.parse_not()?;
            left = Expr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr, ExprError> {
        if matches!(self.peek().map(|t| &t.token), Some(Token::Not)) {
            self.advance();
            let inner = self.parse_not()?;
            return Ok(Expr::Not(Box::new(inner)));
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr, ExprError> {
        let spanned = self
            .advance()
            .ok_or_else(|| ExprError::UnexpectedEof { expected: "expression".into() })?;
        match spanned.token {
            Token::LParen => {
                let inner = self.parse_or()?;
                self.expect(&Token::RParen, "')'")?;
                Ok(inner)
            }
            Token::True => Ok(Expr::True),
            Token::False => Ok(Expr::False),
            Token::Ident(attr) => {
                let op = self.parse_op()?;
                let value = self.parse_literal()?;
                Ok(Expr::Simple(SimpleExpr::new(attr, op, value)))
            }
            // Allow the flipped form `5 < rainrate`, normalising to `rainrate > 5`.
            Token::Number(n) => {
                let op = self.parse_op()?;
                let attr = self.parse_ident()?;
                Ok(Expr::Simple(SimpleExpr::new(attr, flip(op), Scalar::Number(n))))
            }
            Token::Text(s) => {
                let op = self.parse_op()?;
                let attr = self.parse_ident()?;
                Ok(Expr::Simple(SimpleExpr::new(attr, flip(op), Scalar::Text(s))))
            }
            other => Err(ExprError::UnexpectedToken {
                expected: "attribute, literal, '(' , TRUE or FALSE".into(),
                found: format!("{other:?}"),
                position: spanned.position,
            }),
        }
    }

    fn parse_op(&mut self) -> Result<CmpOp, ExprError> {
        let spanned = self
            .advance()
            .ok_or_else(|| ExprError::UnexpectedEof { expected: "comparison operator".into() })?;
        match spanned.token {
            Token::Lt => Ok(CmpOp::Lt),
            Token::Gt => Ok(CmpOp::Gt),
            Token::Le => Ok(CmpOp::Le),
            Token::Ge => Ok(CmpOp::Ge),
            Token::Eq => Ok(CmpOp::Eq),
            Token::Ne => Ok(CmpOp::Ne),
            other => Err(ExprError::UnexpectedToken {
                expected: "comparison operator".into(),
                found: format!("{other:?}"),
                position: spanned.position,
            }),
        }
    }

    fn parse_literal(&mut self) -> Result<Scalar, ExprError> {
        let spanned = self
            .advance()
            .ok_or_else(|| ExprError::UnexpectedEof { expected: "literal".into() })?;
        match spanned.token {
            Token::Number(n) => Ok(Scalar::Number(n)),
            Token::Text(s) => Ok(Scalar::Text(s)),
            other => Err(ExprError::UnexpectedToken {
                expected: "numeric or string literal".into(),
                found: format!("{other:?}"),
                position: spanned.position,
            }),
        }
    }

    fn parse_ident(&mut self) -> Result<String, ExprError> {
        let spanned = self
            .advance()
            .ok_or_else(|| ExprError::UnexpectedEof { expected: "attribute name".into() })?;
        match spanned.token {
            Token::Ident(name) => Ok(name),
            other => Err(ExprError::UnexpectedToken {
                expected: "attribute name".into(),
                found: format!("{other:?}"),
                position: spanned.position,
            }),
        }
    }
}

/// Flip a comparison when the literal was written on the left-hand side
/// (`5 < x` becomes `x > 5`).
fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Ge => CmpOp::Le,
        CmpOp::Eq => CmpOp::Eq,
        CmpOp::Ne => CmpOp::Ne,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{CmpOp, Expr};

    #[test]
    fn parses_paper_example_condition() {
        let e = parse_expr("rainrate > 5").unwrap();
        assert_eq!(e, Expr::simple("rainrate", CmpOp::Gt, 5.0));
    }

    #[test]
    fn parses_example4_conditions() {
        // C1 = (a>20 AND a<30) OR NOT(a != 40)
        let c1 = parse_expr("(a > 20 AND a < 30) OR NOT (a != 40)").unwrap();
        assert_eq!(c1.leaf_count(), 3);
        // C2 = NOT(a>=10) AND b=20
        let c2 = parse_expr("NOT (a >= 10) AND b = 20").unwrap();
        assert_eq!(c2.leaf_count(), 2);
    }

    #[test]
    fn respects_precedence_not_over_and_over_or() {
        // a > 1 OR b > 2 AND c > 3  ==  a > 1 OR (b > 2 AND c > 3)
        let e = parse_expr("a > 1 OR b > 2 AND c > 3").unwrap();
        match e {
            Expr::Or(left, right) => {
                assert_eq!(*left, Expr::simple("a", CmpOp::Gt, 1.0));
                assert!(matches!(*right, Expr::And(_, _)));
            }
            other => panic!("expected OR at the root, got {other:?}"),
        }
        // NOT a = 1 AND b = 2  ==  (NOT a = 1) AND b = 2
        let e = parse_expr("NOT a = 1 AND b = 2").unwrap();
        assert!(matches!(e, Expr::And(_, _)));
    }

    #[test]
    fn parses_parentheses_and_nested_not() {
        let e = parse_expr("NOT (NOT (a > 1))").unwrap();
        assert_eq!(e.leaf_count(), 1);
        assert!(matches!(e, Expr::Not(_)));
    }

    #[test]
    fn parses_flipped_literal_first_form() {
        let e = parse_expr("5 < rainrate").unwrap();
        assert_eq!(e, Expr::simple("rainrate", CmpOp::Gt, 5.0));
        let e = parse_expr("10 >= a").unwrap();
        assert_eq!(e, Expr::simple("a", CmpOp::Le, 10.0));
        let e = parse_expr("'S11' = station").unwrap();
        assert_eq!(e, Expr::simple("station", CmpOp::Eq, "S11"));
    }

    #[test]
    fn parses_true_false_constants() {
        assert_eq!(parse_expr("TRUE").unwrap(), Expr::True);
        assert_eq!(parse_expr("false").unwrap(), Expr::False);
        assert_eq!(parse_expr("TRUE AND a > 1").unwrap().leaf_count(), 1);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(matches!(parse_expr("a > 1 b < 2"), Err(ExprError::UnexpectedToken { .. })));
    }

    #[test]
    fn rejects_missing_operand() {
        assert!(matches!(parse_expr("a >"), Err(ExprError::UnexpectedEof { .. })));
        assert!(matches!(parse_expr("a > 1 AND"), Err(ExprError::UnexpectedEof { .. })));
    }

    #[test]
    fn rejects_empty_input() {
        assert!(matches!(parse_expr(""), Err(ExprError::EmptyExpression)));
        assert!(matches!(parse_expr("   "), Err(ExprError::EmptyExpression)));
    }

    #[test]
    fn rejects_ordering_on_strings() {
        assert!(matches!(
            parse_expr("station < 'S11'"),
            Err(ExprError::InvalidStringComparison { .. })
        ));
        // Equality on strings is fine.
        assert!(parse_expr("station = 'S11'").is_ok());
    }

    #[test]
    fn rejects_unbalanced_parentheses() {
        assert!(parse_expr("(a > 1").is_err());
        assert!(parse_expr("a > 1)").is_err());
    }

    #[test]
    fn display_parse_round_trip() {
        let source = "(a > 20) AND ((b < 30) OR (c = 40))";
        let e = parse_expr(source).unwrap();
        let printed = e.to_string();
        let reparsed = parse_expr(&printed).unwrap();
        assert_eq!(e, reparsed);
    }
}
