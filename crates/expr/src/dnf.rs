//! Disjunctive normal form (Step 2 of the Section 3.5 procedure).
//!
//! A [`Dnf`] is a disjunction of [`Conjunct`]s, each of which is a
//! conjunction of simple expressions. It is produced by evaluating the
//! postfix sequence of the NOT-free condition with a stack: `AND` applies
//! the distributive law to its two operands (cartesian product of their
//! conjuncts), `OR` concatenates them — exactly the algorithm the paper
//! sketches using the IBM postfix-evaluation reference.

use crate::ast::{Expr, SimpleExpr};
use crate::normalize::eliminate_not;
use crate::postfix::{to_postfix, PostfixTok};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A conjunction of simple expressions (one "clause" of the DNF).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Conjunct {
    /// The conjoined simple expressions.
    pub terms: Vec<SimpleExpr>,
}

impl Conjunct {
    /// An empty conjunct, which is vacuously true.
    #[must_use]
    pub fn always_true() -> Self {
        Conjunct { terms: Vec::new() }
    }

    /// Build a conjunct from terms.
    #[must_use]
    pub fn new(terms: Vec<SimpleExpr>) -> Self {
        Conjunct { terms }
    }

    /// Concatenate two conjuncts (logical AND of the clauses).
    #[must_use]
    pub fn merge(&self, other: &Conjunct) -> Conjunct {
        let mut terms = Vec::with_capacity(self.terms.len() + other.terms.len());
        terms.extend(self.terms.iter().cloned());
        terms.extend(other.terms.iter().cloned());
        Conjunct { terms }
    }

    /// Number of simple expressions in the clause.
    #[must_use]
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the clause has no terms (i.e. is vacuously true).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Convert back into an [`Expr`] (an AND-chain, or `TRUE` when empty).
    #[must_use]
    pub fn to_expr(&self) -> Expr {
        self.terms
            .iter()
            .cloned()
            .map(Expr::Simple)
            .reduce(|a, b| Expr::And(Box::new(a), Box::new(b)))
            .unwrap_or(Expr::True)
    }
}

impl fmt::Display for Conjunct {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return f.write_str("TRUE");
        }
        let parts: Vec<String> = self.terms.iter().map(ToString::to_string).collect();
        f.write_str(&parts.join(" AND "))
    }
}

/// A condition in disjunctive normal form.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Dnf {
    /// The disjuncts. An empty list is the constant FALSE; a list containing
    /// one empty conjunct is the constant TRUE.
    pub conjuncts: Vec<Conjunct>,
}

impl Dnf {
    /// The constant FALSE.
    #[must_use]
    pub fn never() -> Self {
        Dnf { conjuncts: Vec::new() }
    }

    /// The constant TRUE.
    #[must_use]
    pub fn always() -> Self {
        Dnf { conjuncts: vec![Conjunct::always_true()] }
    }

    /// Convert an arbitrary expression (NOT allowed) into DNF.
    ///
    /// This is the full Step 1 + Step 2 pipeline: eliminate NOT, convert to
    /// postfix, evaluate the postfix sequence with distribution on AND and
    /// concatenation on OR.
    #[must_use]
    pub fn from_expr(expr: &Expr) -> Dnf {
        let nnf = eliminate_not(expr);
        let postfix = to_postfix(&nnf);
        let mut stack: Vec<Dnf> = Vec::new();
        for tok in postfix {
            match tok {
                PostfixTok::Operand(s) => {
                    stack.push(Dnf { conjuncts: vec![Conjunct::new(vec![s])] });
                }
                PostfixTok::True => stack.push(Dnf::always()),
                PostfixTok::False => stack.push(Dnf::never()),
                PostfixTok::And => {
                    let right = stack.pop().expect("postfix AND needs two operands");
                    let left = stack.pop().expect("postfix AND needs two operands");
                    stack.push(left.distribute_and(&right));
                }
                PostfixTok::Or => {
                    let right = stack.pop().expect("postfix OR needs two operands");
                    let left = stack.pop().expect("postfix OR needs two operands");
                    stack.push(left.concat_or(&right));
                }
            }
        }
        stack.pop().unwrap_or_else(Dnf::always)
    }

    /// Distributive law: `(A ∨ B) ∧ (C ∨ D) = AC ∨ AD ∨ BC ∨ BD`.
    #[must_use]
    pub fn distribute_and(&self, other: &Dnf) -> Dnf {
        let mut conjuncts = Vec::with_capacity(self.conjuncts.len() * other.conjuncts.len());
        for a in &self.conjuncts {
            for b in &other.conjuncts {
                conjuncts.push(a.merge(b));
            }
        }
        Dnf { conjuncts }
    }

    /// OR of two DNFs: simple concatenation of their clauses.
    #[must_use]
    pub fn concat_or(&self, other: &Dnf) -> Dnf {
        let mut conjuncts = Vec::with_capacity(self.conjuncts.len() + other.conjuncts.len());
        conjuncts.extend(self.conjuncts.iter().cloned());
        conjuncts.extend(other.conjuncts.iter().cloned());
        Dnf { conjuncts }
    }

    /// Number of clauses (the `k` of the O(k·n²) cost bound).
    #[must_use]
    pub fn clause_count(&self) -> usize {
        self.conjuncts.len()
    }

    /// Maximum clause width (the `n` of the O(k·n²) cost bound).
    #[must_use]
    pub fn max_clause_width(&self) -> usize {
        self.conjuncts.iter().map(Conjunct::len).max().unwrap_or(0)
    }

    /// Whether this DNF is the constant FALSE.
    #[must_use]
    pub fn is_never(&self) -> bool {
        self.conjuncts.is_empty()
    }

    /// Whether this DNF is trivially TRUE (contains an empty clause).
    #[must_use]
    pub fn is_trivially_true(&self) -> bool {
        self.conjuncts.iter().any(Conjunct::is_empty)
    }

    /// Convert back into an [`Expr`] (an OR of AND-chains).
    #[must_use]
    pub fn to_expr(&self) -> Expr {
        self.conjuncts
            .iter()
            .map(Conjunct::to_expr)
            .reduce(|a, b| Expr::Or(Box::new(a), Box::new(b)))
            .unwrap_or(Expr::False)
    }
}

impl fmt::Display for Dnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.conjuncts.is_empty() {
            return f.write_str("FALSE");
        }
        let parts: Vec<String> = self.conjuncts.iter().map(|c| format!("({c})")).collect();
        f.write_str(&parts.join(" OR "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval, MapBindings};
    use crate::parser::parse_expr;

    fn dnf(src: &str) -> Dnf {
        Dnf::from_expr(&parse_expr(src).unwrap())
    }

    #[test]
    fn single_simple_expression() {
        let d = dnf("a > 1");
        assert_eq!(d.clause_count(), 1);
        assert_eq!(d.conjuncts[0].len(), 1);
    }

    #[test]
    fn and_produces_single_clause() {
        let d = dnf("a > 1 AND b < 2 AND c = 3");
        assert_eq!(d.clause_count(), 1);
        assert_eq!(d.conjuncts[0].len(), 3);
    }

    #[test]
    fn or_produces_multiple_clauses() {
        let d = dnf("a > 1 OR b < 2 OR c = 3");
        assert_eq!(d.clause_count(), 3);
        assert_eq!(d.max_clause_width(), 1);
    }

    #[test]
    fn distribution_of_and_over_or() {
        // (a>1 OR b>2) AND (c>3 OR d>4)  →  4 clauses of width 2.
        let d = dnf("(a > 1 OR b > 2) AND (c > 3 OR d > 4)");
        assert_eq!(d.clause_count(), 4);
        assert!(d.conjuncts.iter().all(|c| c.len() == 2));
    }

    #[test]
    fn paper_example4_dnf_shape() {
        // P = ((a>20 AND a<30) OR NOT(a != 40)) AND (NOT(a>=10) AND b=20)
        // The paper obtains two conjuncts: {E,D,C} and {E,D,B,A}
        // i.e. one clause of width 3 and one of width 4.
        let d = dnf("((a > 20 AND a < 30) OR NOT (a != 40)) AND (NOT (a >= 10) AND b = 20)");
        assert_eq!(d.clause_count(), 2);
        let mut widths: Vec<usize> = d.conjuncts.iter().map(Conjunct::len).collect();
        widths.sort_unstable();
        assert_eq!(widths, vec![3, 4]);
    }

    #[test]
    fn constants() {
        assert!(dnf("FALSE").is_never());
        assert!(dnf("TRUE").is_trivially_true());
        // FALSE OR x  →  just x (after parser constant folding).
        assert_eq!(dnf("FALSE OR a > 1").clause_count(), 1);
    }

    #[test]
    fn dnf_preserves_truth_table_on_grid() {
        let sources = [
            "((a > 20 AND a < 30) OR NOT (a != 40)) AND (NOT (a >= 10) AND b = 20)",
            "(a > 1 OR b > 2) AND (a < 5 OR b < 6) AND NOT (a = 3)",
            "NOT ((a >= 2 AND b <= 3) OR (a != 4 AND b > 1))",
        ];
        for src in sources {
            let original = parse_expr(src).unwrap();
            let d = Dnf::from_expr(&original);
            let roundtrip = d.to_expr();
            for a in 0..=45 {
                for b in 0..=25 {
                    let bindings = MapBindings::new()
                        .with_number("a", f64::from(a))
                        .with_number("b", f64::from(b));
                    assert_eq!(
                        eval(&original, &bindings),
                        eval(&roundtrip, &bindings),
                        "mismatch for {src} at a={a} b={b}"
                    );
                }
            }
        }
    }

    #[test]
    fn display_is_readable() {
        let d = dnf("a > 1 AND b < 2");
        assert_eq!(d.to_string(), "(a > 1 AND b < 2)");
        assert_eq!(Dnf::never().to_string(), "FALSE");
    }
}
