//! Conjunct-level simplification of merged filter conditions.
//!
//! Section 3.1 of the paper notes that after merging two filter operators
//! `F1` (policy) and `F2` (user) into `F3 = (C1) AND (C2)`, the combined
//! condition can often be simplified — e.g. `x > v1 AND x > v2` collapses to
//! `x > max(v1, v2)`. This module implements that simplification over the
//! DNF of the merged condition:
//!
//! * numeric bounds per attribute are tightened into a single interval,
//! * equalities are checked against the interval and the inequalities,
//! * contradictory conjuncts are removed entirely,
//! * duplicate simple expressions and duplicate conjuncts are removed.
//!
//! The result is an equivalent expression with at most as many operators as
//! the input (the "reducing the number of operators" benefit the paper
//! mentions).

use crate::ast::{CmpOp, Expr, Scalar, SimpleExpr};
use crate::dnf::{Conjunct, Dnf};
use std::collections::BTreeMap;

/// Simplify a boolean condition into an equivalent, usually smaller, one.
#[must_use]
pub fn simplify(expr: &Expr) -> Expr {
    let dnf = Dnf::from_expr(expr);
    simplify_dnf(&dnf).to_expr()
}

/// Simplify every conjunct of a DNF, dropping unsatisfiable ones and
/// duplicate clauses.
#[must_use]
pub fn simplify_dnf(dnf: &Dnf) -> Dnf {
    let mut out: Vec<Conjunct> = Vec::with_capacity(dnf.conjuncts.len());
    for conjunct in &dnf.conjuncts {
        match simplify_conjunct(conjunct) {
            Some(c) => {
                if c.is_empty() {
                    // A vacuously-true clause makes the whole condition TRUE.
                    return Dnf::always();
                }
                if !out.contains(&c) {
                    out.push(c);
                }
            }
            None => { /* unsatisfiable clause: drop it */ }
        }
    }
    Dnf { conjuncts: out }
}

/// Accumulated numeric constraints for one attribute within a conjunct.
#[derive(Debug, Default, Clone)]
struct NumericBounds {
    /// Tightest lower bound seen, with inclusivity.
    lower: Option<(f64, bool)>,
    /// Tightest upper bound seen, with inclusivity.
    upper: Option<(f64, bool)>,
    /// Required equality value, if any.
    equals: Option<f64>,
    /// Excluded values (`!=`).
    not_equals: Vec<f64>,
}

impl NumericBounds {
    fn add(&mut self, op: CmpOp, v: f64) {
        match op {
            CmpOp::Gt => self.tighten_lower(v, false),
            CmpOp::Ge => self.tighten_lower(v, true),
            CmpOp::Lt => self.tighten_upper(v, false),
            CmpOp::Le => self.tighten_upper(v, true),
            CmpOp::Eq => match self.equals {
                None => self.equals = Some(v),
                Some(existing) if existing == v => {}
                Some(_) => {
                    // Two different equalities: mark as contradiction by
                    // installing impossible bounds.
                    self.lower = Some((f64::INFINITY, false));
                    self.upper = Some((f64::NEG_INFINITY, false));
                }
            },
            CmpOp::Ne => {
                if !self.not_equals.contains(&v) {
                    self.not_equals.push(v);
                }
            }
        }
    }

    fn tighten_lower(&mut self, v: f64, inclusive: bool) {
        self.lower = Some(match self.lower {
            None => (v, inclusive),
            Some((cur, cur_inc)) => {
                if v > cur || (v == cur && !inclusive && cur_inc) {
                    (v, inclusive)
                } else {
                    (cur, cur_inc)
                }
            }
        });
    }

    fn tighten_upper(&mut self, v: f64, inclusive: bool) {
        self.upper = Some(match self.upper {
            None => (v, inclusive),
            Some((cur, cur_inc)) => {
                if v < cur || (v == cur && !inclusive && cur_inc) {
                    (v, inclusive)
                } else {
                    (cur, cur_inc)
                }
            }
        });
    }

    /// Check satisfiability and emit the minimal list of simple expressions.
    /// Returns `None` when the constraints are contradictory.
    fn emit(&self, attr: &str) -> Option<Vec<SimpleExpr>> {
        // Equality dominates: check it against all other constraints.
        if let Some(eq) = self.equals {
            if let Some((lo, inc)) = self.lower {
                if eq < lo || (eq == lo && !inc) {
                    return None;
                }
            }
            if let Some((hi, inc)) = self.upper {
                if eq > hi || (eq == hi && !inc) {
                    return None;
                }
            }
            if self.not_equals.contains(&eq) {
                return None;
            }
            return Some(vec![SimpleExpr::new(attr, CmpOp::Eq, eq)]);
        }

        // Interval consistency.
        if let (Some((lo, lo_inc)), Some((hi, hi_inc))) = (self.lower, self.upper) {
            if lo > hi || (lo == hi && !(lo_inc && hi_inc)) {
                return None;
            }
            // Degenerate interval [v, v] collapses to an equality.
            if lo == hi && lo_inc && hi_inc {
                if self.not_equals.contains(&lo) {
                    return None;
                }
                return Some(vec![SimpleExpr::new(attr, CmpOp::Eq, lo)]);
            }
        }

        let mut out = Vec::new();
        if let Some((lo, inc)) = self.lower {
            out.push(SimpleExpr::new(attr, if inc { CmpOp::Ge } else { CmpOp::Gt }, lo));
        }
        if let Some((hi, inc)) = self.upper {
            out.push(SimpleExpr::new(attr, if inc { CmpOp::Le } else { CmpOp::Lt }, hi));
        }
        // Keep only exclusions that are not already outside the interval.
        for v in &self.not_equals {
            let inside_lower = match self.lower {
                None => true,
                Some((lo, inc)) => *v > lo || (*v == lo && inc),
            };
            let inside_upper = match self.upper {
                None => true,
                Some((hi, inc)) => *v < hi || (*v == hi && inc),
            };
            if inside_lower && inside_upper {
                out.push(SimpleExpr::new(attr, CmpOp::Ne, *v));
            }
        }
        Some(out)
    }
}

/// Accumulated string constraints for one attribute within a conjunct.
#[derive(Debug, Default, Clone)]
struct TextConstraints {
    equals: Option<String>,
    contradiction: bool,
    not_equals: Vec<String>,
}

impl TextConstraints {
    fn add(&mut self, op: CmpOp, v: &str) {
        match op {
            CmpOp::Eq => match &self.equals {
                None => self.equals = Some(v.to_string()),
                Some(existing) if existing == v => {}
                Some(_) => self.contradiction = true,
            },
            CmpOp::Ne if !self.not_equals.iter().any(|s| s == v) => {
                self.not_equals.push(v.to_string());
            }
            // Ordering over strings is rejected upstream; keep the term
            // verbatim by treating it as a contradiction-free opaque
            // constraint (conservative, never happens for parsed input).
            _ => {}
        }
    }

    fn emit(&self, attr: &str) -> Option<Vec<SimpleExpr>> {
        if self.contradiction {
            return None;
        }
        if let Some(eq) = &self.equals {
            if self.not_equals.iter().any(|s| s == eq) {
                return None;
            }
            return Some(vec![SimpleExpr::new(attr, CmpOp::Eq, eq.clone())]);
        }
        Some(self.not_equals.iter().map(|s| SimpleExpr::new(attr, CmpOp::Ne, s.clone())).collect())
    }
}

/// Simplify a single conjunct. Returns `None` when the conjunct is
/// unsatisfiable (and should be dropped from the DNF).
#[must_use]
pub fn simplify_conjunct(conjunct: &Conjunct) -> Option<Conjunct> {
    // Group terms per attribute, preserving first-seen attribute order so the
    // simplified output is stable and readable.
    let mut order: Vec<String> = Vec::new();
    let mut numeric: BTreeMap<String, NumericBounds> = BTreeMap::new();
    let mut textual: BTreeMap<String, TextConstraints> = BTreeMap::new();
    let mut mixed_kind: Vec<String> = Vec::new();

    for term in &conjunct.terms {
        if !order.contains(&term.attr) {
            order.push(term.attr.clone());
        }
        match &term.value {
            Scalar::Number(v) => {
                if textual.contains_key(&term.attr) {
                    mixed_kind.push(term.attr.clone());
                }
                numeric.entry(term.attr.clone()).or_default().add(term.op, *v);
            }
            Scalar::Text(s) => {
                if numeric.contains_key(&term.attr) {
                    mixed_kind.push(term.attr.clone());
                }
                textual.entry(term.attr.clone()).or_default().add(term.op, s);
            }
        }
    }

    // An attribute constrained to be both a number and a string can never be
    // satisfied by a typed column.
    if !mixed_kind.is_empty() {
        return None;
    }

    let mut terms = Vec::with_capacity(conjunct.terms.len());
    for attr in order {
        if let Some(bounds) = numeric.get(&attr) {
            terms.extend(bounds.emit(&attr)?);
        }
        if let Some(texts) = textual.get(&attr) {
            terms.extend(texts.emit(&attr)?);
        }
    }
    Some(Conjunct::new(terms))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval, MapBindings};
    use crate::parser::parse_expr;

    fn simp(src: &str) -> String {
        simplify(&parse_expr(src).unwrap()).to_string()
    }

    #[test]
    fn paper_merge_example_collapses_redundant_bound() {
        // C1 = x > v1, C2 = x > v2 with v2 >= v1 → x > v2.
        assert_eq!(simp("x > 5 AND x > 50"), "x > 50");
        assert_eq!(simp("x > 50 AND x > 5"), "x > 50");
    }

    #[test]
    fn keeps_both_bounds_of_a_window() {
        assert_eq!(simp("x > 5 AND x < 50"), "(x > 5) AND (x < 50)");
    }

    #[test]
    fn inclusive_vs_exclusive_bounds() {
        // The strict bound wins at equal values.
        assert_eq!(simp("x >= 5 AND x > 5"), "x > 5");
        assert_eq!(simp("x <= 5 AND x < 5"), "x < 5");
    }

    #[test]
    fn contradictions_become_false() {
        assert_eq!(simp("x > 5 AND x < 4"), "FALSE");
        assert_eq!(simp("x = 5 AND x = 6"), "FALSE");
        assert_eq!(simp("x = 5 AND x != 5"), "FALSE");
        assert_eq!(simp("x > 5 AND x = 3"), "FALSE");
        assert_eq!(simp("s = 'a' AND s = 'b'"), "FALSE");
    }

    #[test]
    fn degenerate_interval_becomes_equality() {
        assert_eq!(simp("x >= 5 AND x <= 5"), "x = 5");
    }

    #[test]
    fn equality_absorbs_compatible_bounds() {
        assert_eq!(simp("x = 7 AND x > 5 AND x <= 10"), "x = 7");
    }

    #[test]
    fn irrelevant_exclusions_are_dropped() {
        // x != 100 is implied by x < 50.
        assert_eq!(simp("x < 50 AND x != 100"), "x < 50");
        // ... but an exclusion inside the interval is kept.
        assert_eq!(simp("x < 50 AND x != 10"), "(x < 50) AND (x != 10)");
    }

    #[test]
    fn unsatisfiable_disjunct_is_dropped() {
        assert_eq!(simp("(x > 5 AND x < 4) OR x = 9"), "x = 9");
    }

    #[test]
    fn duplicate_clauses_are_removed() {
        assert_eq!(simp("x > 5 OR x > 5"), "x > 5");
    }

    #[test]
    fn mixed_kind_attribute_is_unsatisfiable() {
        assert_eq!(simp("x = 5 AND x = 'five'"), "FALSE");
    }

    #[test]
    fn string_equalities() {
        assert_eq!(simp("s = 'a' AND s != 'b'"), "s = 'a'");
        assert_eq!(simp("s != 'a' AND s != 'a'"), "s != 'a'");
    }

    #[test]
    fn true_stays_true() {
        assert_eq!(simp("TRUE"), "TRUE");
        assert_eq!(simp("x > 1 OR TRUE"), "TRUE");
    }

    #[test]
    fn simplification_preserves_semantics_on_grid() {
        let sources = [
            "x > 5 AND x > 50",
            "(x > 5 AND x < 4) OR x = 9",
            "x >= 5 AND x <= 5 AND x != 7",
            "(x > 0 AND x != 3) OR (x < -5 AND x > -10)",
            "x < 50 AND x != 10 AND x >= 0",
        ];
        for src in sources {
            let original = parse_expr(src).unwrap();
            let simplified = simplify(&original);
            for i in -30..=120 {
                let x = f64::from(i) * 0.5;
                let b = MapBindings::new().with_number("x", x);
                assert_eq!(
                    eval(&original, &b),
                    eval(&simplified, &b),
                    "mismatch for {src} at x={x} (simplified: {simplified})"
                );
            }
        }
    }

    #[test]
    fn simplified_is_never_larger() {
        let sources = [
            "x > 5 AND x > 50 AND x > 17",
            "(x > 5 OR x > 2) AND (x > 1 OR x > 0)",
            "x = 5 AND x >= 0 AND x <= 100 AND x != 9",
        ];
        for src in sources {
            let original = parse_expr(src).unwrap();
            let simplified = simplify(&original);
            assert!(
                simplified.leaf_count() <= Dnf::from_expr(&original).to_expr().leaf_count(),
                "simplify grew {src}"
            );
        }
    }
}
