//! NR/PR conflict analysis (Step 3 of the Section 3.5 procedure).
//!
//! When the PEP merges the filter condition derived from a policy obligation
//! (`C1`) with the condition from a user query (`C2`), the combined predicate
//! `P = C1 AND C2` may return *no* tuples (an **NR**, empty-result warning)
//! or only *some* of the tuples the user asked for (a **PR**, partial-result
//! warning). The procedure is:
//!
//! 1. eliminate `NOT` from `P` ([`crate::normalize`]),
//! 2. convert to DNF ([`crate::dnf`]),
//! 3. pairwise apply `checkTwoSimpleExpression` to the simple expressions of
//!    each conjunct; a conjunct is NR if any pair is contradictory, PR if any
//!    policy-side predicate strictly narrows a user-side predicate; the whole
//!    condition alerts NR only if *every* conjunct is NR, and PR if every
//!    conjunct is marked (NR or PR).
//!
//! The per-pair logic reproduces the Figure 5 decision matrix, extended to
//! all 6×6 operator combinations and to string equality predicates.

use crate::ast::{CmpOp, Expr, Origin, Scalar, SimpleExpr};
use crate::dnf::{Conjunct, Dnf};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Outcome of a conflict check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Verdict {
    /// No conflict: the user receives everything their query asks for.
    Compatible,
    /// Partial result: some tuples matching the user query are withheld by
    /// the policy.
    Pr,
    /// Empty result: no tuple can ever satisfy the merged condition.
    Nr,
}

impl Verdict {
    /// The more severe of two verdicts (NR > PR > Compatible).
    #[must_use]
    pub fn max(self, other: Verdict) -> Verdict {
        std::cmp::max(self, other)
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Compatible => f.write_str("OK"),
            Verdict::Pr => f.write_str("PR"),
            Verdict::Nr => f.write_str("NR"),
        }
    }
}

/// Detailed outcome of [`analyze_merge`] / [`check_dnf`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConflictReport {
    /// The overall alert raised to the user.
    pub verdict: Verdict,
    /// Per-conjunct verdicts (in DNF clause order).
    pub clause_verdicts: Vec<Verdict>,
    /// How many `checkTwoSimpleExpression` calls were made — the paper bounds
    /// the cost by O(k·n²) and the Example 4 walkthrough counts 3 + 6 calls.
    pub pair_checks: usize,
    /// Number of DNF clauses (`k`).
    pub clause_count: usize,
    /// Maximum clause width (`n`).
    pub max_clause_width: usize,
}

impl ConflictReport {
    /// Whether the merged query should be deployed without any warning.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.verdict == Verdict::Compatible
    }
}

/// The numeric or string "solution set" of a simple expression, used for
/// satisfiability and containment reasoning.
#[derive(Debug, Clone, PartialEq)]
enum ValueSet {
    /// `x = v` over numbers: a single point.
    NumPoint(f64),
    /// `x != v` over numbers: everything except one point.
    NumComplement(f64),
    /// A half-line: all numbers above `bound` (inclusive if `inclusive`).
    NumAbove { bound: f64, inclusive: bool },
    /// A half-line: all numbers below `bound` (inclusive if `inclusive`).
    NumBelow { bound: f64, inclusive: bool },
    /// `x = s` over strings.
    TextPoint(String),
    /// `x != s` over strings.
    TextComplement(String),
}

impl ValueSet {
    fn of(simple: &SimpleExpr) -> Option<ValueSet> {
        match (&simple.value, simple.op) {
            (Scalar::Number(v), CmpOp::Eq) => Some(ValueSet::NumPoint(*v)),
            (Scalar::Number(v), CmpOp::Ne) => Some(ValueSet::NumComplement(*v)),
            (Scalar::Number(v), CmpOp::Gt) => {
                Some(ValueSet::NumAbove { bound: *v, inclusive: false })
            }
            (Scalar::Number(v), CmpOp::Ge) => {
                Some(ValueSet::NumAbove { bound: *v, inclusive: true })
            }
            (Scalar::Number(v), CmpOp::Lt) => {
                Some(ValueSet::NumBelow { bound: *v, inclusive: false })
            }
            (Scalar::Number(v), CmpOp::Le) => {
                Some(ValueSet::NumBelow { bound: *v, inclusive: true })
            }
            (Scalar::Text(s), CmpOp::Eq) => Some(ValueSet::TextPoint(s.clone())),
            (Scalar::Text(s), CmpOp::Ne) => Some(ValueSet::TextComplement(s.clone())),
            // Ordering operators over strings are rejected by the parser;
            // if constructed programmatically we cannot reason about them.
            (Scalar::Text(_), _) => None,
        }
    }

    /// Is this set restricted to numbers (as opposed to strings)?
    fn is_numeric(&self) -> bool {
        matches!(
            self,
            ValueSet::NumPoint(_)
                | ValueSet::NumComplement(_)
                | ValueSet::NumAbove { .. }
                | ValueSet::NumBelow { .. }
        )
    }

    fn contains_number(&self, x: f64) -> bool {
        match self {
            ValueSet::NumPoint(v) => x == *v,
            ValueSet::NumComplement(v) => x != *v,
            ValueSet::NumAbove { bound, inclusive } => x > *bound || (*inclusive && x == *bound),
            ValueSet::NumBelow { bound, inclusive } => x < *bound || (*inclusive && x == *bound),
            _ => false,
        }
    }

    /// Do the two sets have a non-empty intersection?
    fn intersects(&self, other: &ValueSet) -> bool {
        use ValueSet::{NumAbove, NumBelow, NumComplement, NumPoint, TextComplement, TextPoint};
        match (self, other) {
            // A number predicate and a string predicate on the same attribute
            // can never both hold for a single typed column.
            (a, b) if a.is_numeric() != b.is_numeric() => false,

            (NumPoint(p), _) => other.contains_number(*p),
            (_, NumPoint(p)) => self.contains_number(*p),
            // Two complements always intersect (the real line minus two points).
            (NumComplement(_), NumComplement(_)) => true,
            // A half-line minus one point is never empty.
            (NumComplement(_), NumAbove { .. } | NumBelow { .. })
            | (NumAbove { .. } | NumBelow { .. }, NumComplement(_)) => true,
            // Two half-lines in the same direction always intersect.
            (NumAbove { .. }, NumAbove { .. }) | (NumBelow { .. }, NumBelow { .. }) => true,
            // Opposite half-lines intersect when the bounds overlap.
            (
                NumAbove { bound: lo, inclusive: lo_inc },
                NumBelow { bound: hi, inclusive: hi_inc },
            )
            | (
                NumBelow { bound: hi, inclusive: hi_inc },
                NumAbove { bound: lo, inclusive: lo_inc },
            ) => lo < hi || (lo == hi && *lo_inc && *hi_inc),

            (TextPoint(a), TextPoint(b)) => a == b,
            (TextPoint(a), TextComplement(b)) | (TextComplement(b), TextPoint(a)) => a != b,
            (TextComplement(_), TextComplement(_)) => true,

            // Remaining combinations are mixed-kind and unreachable because of
            // the is_numeric guard above.
            _ => false,
        }
    }

    /// Is `self` a subset of `other`?
    fn subset_of(&self, other: &ValueSet) -> bool {
        use ValueSet::{NumAbove, NumBelow, NumComplement, NumPoint, TextComplement, TextPoint};
        match (self, other) {
            (a, b) if a.is_numeric() != b.is_numeric() => false,

            (NumPoint(p), _) => other.contains_number(*p),
            (NumComplement(a), NumComplement(b)) => a == b,
            // A complement (the whole line minus a point) is never contained
            // in a half-line or a point.
            (NumComplement(_), _) => false,
            // Half-lines are infinite, so never inside a point.
            (NumAbove { .. } | NumBelow { .. }, NumPoint(_)) => false,
            // A half-line is inside a complement iff the excluded point is
            // outside the half-line.
            (s @ (NumAbove { .. } | NumBelow { .. }), NumComplement(v)) => !s.contains_number(*v),
            (NumAbove { bound: a, inclusive: ia }, NumAbove { bound: b, inclusive: ib }) => {
                a > b || (a == b && (*ib || !*ia))
            }
            (NumBelow { bound: a, inclusive: ia }, NumBelow { bound: b, inclusive: ib }) => {
                a < b || (a == b && (*ib || !*ia))
            }
            // Opposite directions: a half-line is unbounded on the side the
            // other is bounded on, so containment is impossible.
            (NumAbove { .. }, NumBelow { .. }) | (NumBelow { .. }, NumAbove { .. }) => false,

            (TextPoint(a), TextPoint(b)) => a == b,
            (TextPoint(a), TextComplement(b)) => a != b,
            (TextComplement(a), TextComplement(b)) => a == b,
            (TextComplement(_), TextPoint(_)) => false,

            _ => false,
        }
    }
}

/// `checkTwoSimpleExpression` from the paper, with roles passed explicitly:
/// `policy` comes from the obligation-derived filter, `user` from the user
/// query. Returns the verdict for the pair.
///
/// * Different attributes never conflict.
/// * If the conjunction of the two predicates is unsatisfiable, the pair is
///   **NR**.
/// * Otherwise, if the user's solution set is not fully contained in the
///   policy's (i.e. the policy removes tuples the user asked for), the pair
///   is **PR** — this reproduces the Figure 5 matrix for `x ≥ v1` vs
///   `x ≤ v2` and generalises it to all operator combinations.
/// * Otherwise the pair is compatible.
#[must_use]
pub fn check_two_simple(policy: &SimpleExpr, user: &SimpleExpr) -> Verdict {
    if policy.attr != user.attr {
        return Verdict::Compatible;
    }
    let (Some(p), Some(u)) = (ValueSet::of(policy), ValueSet::of(user)) else {
        // Ill-formed predicates (ordering over strings): treat conservatively
        // as a partial-result risk rather than crashing.
        return Verdict::Pr;
    };
    if !p.intersects(&u) {
        return Verdict::Nr;
    }
    if u.subset_of(&p) {
        Verdict::Compatible
    } else {
        Verdict::Pr
    }
}

/// Check every pair of simple expressions within one DNF conjunct.
///
/// Pairs are formed the way the paper's Example 4 does — `C(n,2)` calls per
/// conjunct — but the PR decision is only meaningful for pairs where one side
/// comes from the policy and the other from the user query (tracked by
/// [`Origin`] tags). Pairs with the same origin can still raise NR, because a
/// contradiction makes the whole conjunct unsatisfiable regardless of origin.
#[must_use]
pub fn check_conjunct(conjunct: &Conjunct) -> (Verdict, usize) {
    let terms = &conjunct.terms;
    let mut verdict = Verdict::Compatible;
    let mut calls = 0usize;
    for i in 0..terms.len() {
        for j in (i + 1)..terms.len() {
            let (a, b) = (&terms[i], &terms[j]);
            if a.attr != b.attr {
                continue;
            }
            calls += 1;
            let pair = match (a.origin, b.origin) {
                (Origin::Policy, Origin::User) => check_two_simple(a, b),
                (Origin::User, Origin::Policy) => check_two_simple(b, a),
                // Same (or unknown) origin: only unsatisfiability matters.
                _ => match check_two_simple(a, b) {
                    Verdict::Nr => Verdict::Nr,
                    _ => Verdict::Compatible,
                },
            };
            verdict = verdict.max(pair);
            if verdict == Verdict::Nr {
                // A single contradiction kills the conjunct; no need to keep
                // scanning (the call count still reflects work done so far,
                // mirroring a short-circuiting implementation).
                return (Verdict::Nr, calls);
            }
        }
    }
    (verdict, calls)
}

/// Aggregate the per-conjunct verdicts of a DNF according to the paper's
/// rule: alert NR only when *all* conjuncts are NR; alert PR when all
/// conjuncts are marked (PR or NR) but not all NR; otherwise no alert.
#[must_use]
pub fn check_dnf(dnf: &Dnf) -> ConflictReport {
    let mut clause_verdicts = Vec::with_capacity(dnf.conjuncts.len());
    let mut pair_checks = 0usize;
    for conjunct in &dnf.conjuncts {
        let (v, calls) = check_conjunct(conjunct);
        pair_checks += calls;
        clause_verdicts.push(v);
    }
    let verdict = if clause_verdicts.is_empty() {
        // The merged condition is constant FALSE.
        Verdict::Nr
    } else if clause_verdicts.iter().all(|v| *v == Verdict::Nr) {
        Verdict::Nr
    } else if clause_verdicts.iter().all(|v| *v != Verdict::Compatible) {
        Verdict::Pr
    } else {
        Verdict::Compatible
    };
    ConflictReport {
        verdict,
        clause_verdicts,
        pair_checks,
        clause_count: dnf.clause_count(),
        max_clause_width: dnf.max_clause_width(),
    }
}

/// Full pipeline: tag the policy and user conditions with their origins,
/// conjoin them, convert to DNF and run the NR/PR analysis.
#[must_use]
pub fn analyze_merge(policy: &Expr, user: &Expr) -> ConflictReport {
    let combined =
        policy.clone().with_origin(Origin::Policy).and(user.clone().with_origin(Origin::User));
    let dnf = Dnf::from_expr(&combined);
    check_dnf(&dnf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;

    fn analyze(policy: &str, user: &str) -> Verdict {
        analyze_merge(&parse_expr(policy).unwrap(), &parse_expr(user).unwrap()).verdict
    }

    #[test]
    fn example3_pr_case() {
        // Policy: a > 8, user: a > 5. Tuples in (5, 8] are withheld → PR.
        assert_eq!(analyze("a > 8", "a > 5"), Verdict::Pr);
    }

    #[test]
    fn example3_nr_case() {
        // Policy: a < 4, user: a > 5 → contradiction → NR.
        assert_eq!(analyze("a < 4", "a > 5"), Verdict::Nr);
    }

    #[test]
    fn compatible_when_user_is_stricter() {
        // Policy: a > 5, user: a > 50 → everything the user wants is allowed.
        assert_eq!(analyze("a > 5", "a > 50"), Verdict::Compatible);
        assert_eq!(analyze("a >= 5", "a = 7"), Verdict::Compatible);
        assert_eq!(analyze("a != 3", "a > 10"), Verdict::Compatible);
    }

    #[test]
    fn figure5_ge_vs_le_matrix() {
        // S1 = x >= v1 (policy), S2 = x <= v2 (user).
        // v1 > v2  → empty intersection → NR.
        assert_eq!(analyze("x >= 10", "x <= 5"), Verdict::Nr);
        // v1 <= v2 → the user also wanted values below v1 → PR.
        assert_eq!(analyze("x >= 5", "x <= 10"), Verdict::Pr);
        // v1 == v2 → only the single point x = v1 survives → still PR.
        assert_eq!(analyze("x >= 7", "x <= 7"), Verdict::Pr);
    }

    #[test]
    fn equality_pairs() {
        assert_eq!(analyze("x = 5", "x = 5"), Verdict::Compatible);
        assert_eq!(analyze("x = 5", "x = 6"), Verdict::Nr);
        assert_eq!(analyze("x = 5", "x > 4"), Verdict::Pr);
        assert_eq!(analyze("x != 5", "x = 5"), Verdict::Nr);
        assert_eq!(analyze("x != 5", "x = 6"), Verdict::Compatible);
        assert_eq!(analyze("x != 5", "x > 0"), Verdict::Pr);
    }

    #[test]
    fn string_predicates() {
        assert_eq!(analyze("s = 'a'", "s = 'a'"), Verdict::Compatible);
        assert_eq!(analyze("s = 'a'", "s = 'b'"), Verdict::Nr);
        assert_eq!(analyze("s != 'a'", "s = 'b'"), Verdict::Compatible);
        assert_eq!(analyze("s != 'a'", "s != 'b'"), Verdict::Pr);
        assert_eq!(analyze("s = 'a'", "s != 'b'"), Verdict::Pr);
    }

    #[test]
    fn mixed_kind_on_same_attribute_is_nr() {
        assert_eq!(analyze("x = 5", "x = 'five'"), Verdict::Nr);
    }

    #[test]
    fn different_attributes_do_not_conflict() {
        assert_eq!(analyze("a > 5", "b < 3"), Verdict::Compatible);
    }

    #[test]
    fn paper_example4_returns_nr() {
        // C1 = (a>20 AND a<30) OR NOT(a != 40); C2 = NOT(a>=10) AND b=20.
        // Both DNF conjuncts contain a contradiction (a<10 vs a=40, and
        // a<10 vs a>20), so the overall alert is NR.
        let report = analyze_merge(
            &parse_expr("(a > 20 AND a < 30) OR NOT (a != 40)").unwrap(),
            &parse_expr("NOT (a >= 10) AND b = 20").unwrap(),
        );
        assert_eq!(report.verdict, Verdict::Nr);
        assert_eq!(report.clause_count, 2);
        assert!(report.clause_verdicts.iter().all(|v| *v == Verdict::Nr));
    }

    #[test]
    fn disjunctive_user_query_only_partially_blocked_is_compatible_overall() {
        // Policy allows a > 0. User asks for a > 5 OR a < -100.
        // One DNF branch (a > 5) is fully allowed, the other (a < -100) is
        // contradictory; per the paper's rule an alert is raised only when
        // *all* conjuncts are marked, so no alert here.
        assert_eq!(analyze("a > 0", "a > 5 OR a < -100"), Verdict::Compatible);
    }

    #[test]
    fn all_branches_marked_pr_alerts_pr() {
        // Policy allows a > 10; the user asks for a > 5 OR a > 7 — both
        // branches lose part of their range → PR.
        assert_eq!(analyze("a > 10", "a > 5 OR a > 7"), Verdict::Pr);
    }

    #[test]
    fn mix_of_nr_and_pr_branches_alerts_pr() {
        // Policy allows a > 10. Branch 1 (a < 0) is NR, branch 2 (a > 3) is PR.
        assert_eq!(analyze("a > 10", "a < 0 OR a > 3"), Verdict::Pr);
    }

    #[test]
    fn pair_check_counts_match_example4() {
        // Example 4 makes C(3,2)=3 calls on the first conjunct and C(4,2)=6 on
        // the second — but our conjunct check may short-circuit once NR is
        // found, so the count is at most 9 and at least 2.
        let report = analyze_merge(
            &parse_expr("(a > 20 AND a < 30) OR NOT (a != 40)").unwrap(),
            &parse_expr("NOT (a >= 10) AND b = 20").unwrap(),
        );
        assert!(report.pair_checks >= 2);
        assert!(report.pair_checks <= 9);
        assert_eq!(report.max_clause_width, 4);
    }

    #[test]
    fn true_policy_never_alerts() {
        assert_eq!(analyze("TRUE", "a > 5"), Verdict::Compatible);
        assert_eq!(analyze("TRUE", "a > 5 OR b < 3"), Verdict::Compatible);
    }

    #[test]
    fn false_user_query_is_nr() {
        assert_eq!(analyze("a > 5", "FALSE"), Verdict::Nr);
    }

    #[test]
    fn check_two_simple_exhaustive_sanity() {
        // For every operator pair and every value ordering, the verdict must
        // be consistent with a brute-force sample of the number line.
        let candidates = [1.0_f64, 5.0, 9.0];
        let sample: Vec<f64> = (-20..=40).map(|i| f64::from(i) * 0.5).collect();
        for op1 in CmpOp::all() {
            for op2 in CmpOp::all() {
                for v1 in candidates {
                    for v2 in candidates {
                        let policy = SimpleExpr::new("x", op1, v1);
                        let user = SimpleExpr::new("x", op2, v2);
                        let verdict = check_two_simple(&policy, &user);
                        let both: Vec<f64> = sample
                            .iter()
                            .copied()
                            .filter(|x| {
                                op1.apply_ord(x.partial_cmp(&v1).unwrap())
                                    && op2.apply_ord(x.partial_cmp(&v2).unwrap())
                            })
                            .collect();
                        let user_only: Vec<f64> = sample
                            .iter()
                            .copied()
                            .filter(|x| op2.apply_ord(x.partial_cmp(&v2).unwrap()))
                            .collect();
                        match verdict {
                            Verdict::Nr => {
                                assert!(
                                    both.is_empty(),
                                    "NR but {op1} {v1} ∧ {op2} {v2} is satisfiable on the sample"
                                );
                            }
                            Verdict::Compatible => {
                                assert_eq!(
                                    both.len(),
                                    user_only.len(),
                                    "Compatible but policy {op1} {v1} drops user {op2} {v2} tuples"
                                );
                            }
                            Verdict::Pr => {
                                // PR claims: satisfiable on the real line, but the user
                                // loses something. The finite sample may not witness
                                // satisfiability, but it must never show the user set
                                // fully preserved AND non-empty intersection missing.
                                if !user_only.is_empty() {
                                    assert!(both.len() <= user_only.len());
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}
