//! Tokenizer for the textual filter-condition syntax.
//!
//! The surface syntax is what appears inside the
//! `exacml:obligation:stream-filter-condition-id` attribute assignment of a
//! policy (Figure 2 of the paper) and inside `<FilterCondition>` of a user
//! query (Figure 4a), e.g. `rainrate > 5 AND NOT (station = 'S11')`.

use crate::error::ExprError;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// An attribute name, e.g. `rainrate`.
    Ident(String),
    /// A numeric literal.
    Number(f64),
    /// A quoted string literal (single or double quotes).
    Text(String),
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `=` (also accepts `==`)
    Eq,
    /// `!=` (also accepts `<>`)
    Ne,
    /// `AND` keyword (case-insensitive), also `&&`.
    And,
    /// `OR` keyword (case-insensitive), also `||`.
    Or,
    /// `NOT` keyword (case-insensitive), also `!`.
    Not,
    /// `TRUE` keyword.
    True,
    /// `FALSE` keyword.
    False,
    /// `(`
    LParen,
    /// `)`
    RParen,
}

/// A token together with the byte offset where it started, for error messages.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token itself.
    pub token: Token,
    /// Byte offset in the source string.
    pub position: usize,
}

/// Tokenize a condition string.
///
/// # Errors
/// Returns an error on unknown characters, unterminated strings or malformed
/// numbers.
pub fn tokenize(input: &str) -> Result<Vec<Spanned>, ExprError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;

    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                tokens.push(Spanned { token: Token::LParen, position: i });
                i += 1;
            }
            ')' => {
                tokens.push(Spanned { token: Token::RParen, position: i });
                i += 1;
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Spanned { token: Token::Le, position: i });
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    tokens.push(Spanned { token: Token::Ne, position: i });
                    i += 2;
                } else {
                    tokens.push(Spanned { token: Token::Lt, position: i });
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Spanned { token: Token::Ge, position: i });
                    i += 2;
                } else {
                    tokens.push(Spanned { token: Token::Gt, position: i });
                    i += 1;
                }
            }
            '=' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Spanned { token: Token::Eq, position: i });
                    i += 2;
                } else {
                    tokens.push(Spanned { token: Token::Eq, position: i });
                    i += 1;
                }
            }
            '!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Spanned { token: Token::Ne, position: i });
                    i += 2;
                } else {
                    tokens.push(Spanned { token: Token::Not, position: i });
                    i += 1;
                }
            }
            '&' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'&' {
                    tokens.push(Spanned { token: Token::And, position: i });
                    i += 2;
                } else {
                    return Err(ExprError::UnexpectedChar { ch: '&', position: i });
                }
            }
            '|' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'|' {
                    tokens.push(Spanned { token: Token::Or, position: i });
                    i += 2;
                } else {
                    return Err(ExprError::UnexpectedChar { ch: '|', position: i });
                }
            }
            '\'' | '"' => {
                let quote = bytes[i];
                let start = i;
                i += 1;
                let mut buf = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(ExprError::UnterminatedString { position: start });
                    }
                    if bytes[i] == quote {
                        i += 1;
                        break;
                    }
                    buf.push(bytes[i] as char);
                    i += 1;
                }
                tokens.push(Spanned { token: Token::Text(buf), position: start });
            }
            c if c.is_ascii_digit()
                || (c == '-' && i + 1 < bytes.len() && (bytes[i + 1] as char).is_ascii_digit()) =>
            {
                let start = i;
                i += 1; // consume digit or leading minus
                while i < bytes.len() {
                    let c = bytes[i] as char;
                    let exponent_sign =
                        (c == '-' || c == '+') && (bytes[i - 1] == b'e' || bytes[i - 1] == b'E');
                    if c.is_ascii_digit() || c == '.' || c == 'e' || c == 'E' || exponent_sign {
                        i += 1;
                    } else {
                        break;
                    }
                }
                let text = &input[start..i];
                let value: f64 = text.parse().map_err(|_| ExprError::BadNumber {
                    text: text.to_string(),
                    position: start,
                })?;
                tokens.push(Spanned { token: Token::Number(value), position: start });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let c = bytes[i] as char;
                    if c.is_ascii_alphanumeric() || c == '_' || c == '.' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                let word = &input[start..i];
                let token = match word.to_ascii_uppercase().as_str() {
                    "AND" => Token::And,
                    "OR" => Token::Or,
                    "NOT" => Token::Not,
                    "TRUE" => Token::True,
                    "FALSE" => Token::False,
                    _ => Token::Ident(word.to_string()),
                };
                tokens.push(Spanned { token, position: start });
            }
            other => return Err(ExprError::UnexpectedChar { ch: other, position: i }),
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(input: &str) -> Vec<Token> {
        tokenize(input).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn tokenizes_simple_condition() {
        assert_eq!(
            toks("rainrate > 5"),
            vec![Token::Ident("rainrate".into()), Token::Gt, Token::Number(5.0)]
        );
    }

    #[test]
    fn tokenizes_all_operators() {
        assert_eq!(
            toks("a < 1 b > 2 c <= 3 d >= 4 e = 5 f != 6 g <> 7 h == 8"),
            vec![
                Token::Ident("a".into()),
                Token::Lt,
                Token::Number(1.0),
                Token::Ident("b".into()),
                Token::Gt,
                Token::Number(2.0),
                Token::Ident("c".into()),
                Token::Le,
                Token::Number(3.0),
                Token::Ident("d".into()),
                Token::Ge,
                Token::Number(4.0),
                Token::Ident("e".into()),
                Token::Eq,
                Token::Number(5.0),
                Token::Ident("f".into()),
                Token::Ne,
                Token::Number(6.0),
                Token::Ident("g".into()),
                Token::Ne,
                Token::Number(7.0),
                Token::Ident("h".into()),
                Token::Eq,
                Token::Number(8.0),
            ]
        );
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert_eq!(
            toks("and AND And or OR not NOT"),
            vec![Token::And, Token::And, Token::And, Token::Or, Token::Or, Token::Not, Token::Not]
        );
    }

    #[test]
    fn symbolic_connectives() {
        assert_eq!(
            toks("a > 1 && b < 2 || ! c = 3"),
            vec![
                Token::Ident("a".into()),
                Token::Gt,
                Token::Number(1.0),
                Token::And,
                Token::Ident("b".into()),
                Token::Lt,
                Token::Number(2.0),
                Token::Or,
                Token::Not,
                Token::Ident("c".into()),
                Token::Eq,
                Token::Number(3.0),
            ]
        );
    }

    #[test]
    fn string_literals_single_and_double() {
        assert_eq!(
            toks("station = 'S11' OR station = \"S12\""),
            vec![
                Token::Ident("station".into()),
                Token::Eq,
                Token::Text("S11".into()),
                Token::Or,
                Token::Ident("station".into()),
                Token::Eq,
                Token::Text("S12".into()),
            ]
        );
    }

    #[test]
    fn negative_and_scientific_numbers() {
        assert_eq!(
            toks("a > -3.5 AND b < 1.2e3"),
            vec![
                Token::Ident("a".into()),
                Token::Gt,
                Token::Number(-3.5),
                Token::And,
                Token::Ident("b".into()),
                Token::Lt,
                Token::Number(1200.0),
            ]
        );
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(matches!(tokenize("a = 'oops"), Err(ExprError::UnterminatedString { .. })));
    }

    #[test]
    fn unexpected_char_errors() {
        assert!(matches!(tokenize("a # 3"), Err(ExprError::UnexpectedChar { ch: '#', .. })));
        assert!(matches!(tokenize("a & b"), Err(ExprError::UnexpectedChar { ch: '&', .. })));
    }

    #[test]
    fn positions_are_recorded() {
        let spanned = tokenize("ab >= 10").unwrap();
        assert_eq!(spanned[0].position, 0);
        assert_eq!(spanned[1].position, 3);
        assert_eq!(spanned[2].position, 6);
    }

    #[test]
    fn identifiers_may_contain_dots_and_underscores() {
        assert_eq!(
            toks("weather.rain_rate > 0"),
            vec![Token::Ident("weather.rain_rate".into()), Token::Gt, Token::Number(0.0)]
        );
    }
}
