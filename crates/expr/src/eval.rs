//! Evaluation of expressions against attribute bindings.
//!
//! The DSMS filter operator evaluates the (merged) filter condition against
//! every incoming tuple; the property tests use the same evaluator to prove
//! that NOT-elimination and DNF conversion preserve truth tables.

use crate::ast::{CmpOp, Expr, Scalar, SimpleExpr};
use std::collections::HashMap;

/// A source of attribute values.
///
/// Implemented by the DSMS tuple type and by [`MapBindings`] for tests.
pub trait Bindings {
    /// Look up the value bound to `attr`, if any.
    fn lookup(&self, attr: &str) -> Option<Scalar>;
}

/// Simple hash-map backed bindings, handy in tests and examples.
#[derive(Debug, Clone, Default)]
pub struct MapBindings {
    values: HashMap<String, Scalar>,
}

impl MapBindings {
    /// Empty bindings.
    #[must_use]
    pub fn new() -> Self {
        MapBindings { values: HashMap::new() }
    }

    /// Add a numeric binding (builder style).
    #[must_use]
    pub fn with_number(mut self, attr: impl Into<String>, value: f64) -> Self {
        self.values.insert(attr.into(), Scalar::Number(value));
        self
    }

    /// Add a text binding (builder style).
    #[must_use]
    pub fn with_text(mut self, attr: impl Into<String>, value: impl Into<String>) -> Self {
        self.values.insert(attr.into(), Scalar::Text(value.into()));
        self
    }

    /// Insert a binding in place.
    pub fn set(&mut self, attr: impl Into<String>, value: Scalar) {
        self.values.insert(attr.into(), value);
    }
}

impl Bindings for MapBindings {
    fn lookup(&self, attr: &str) -> Option<Scalar> {
        self.values.get(attr).cloned()
    }
}

impl Bindings for HashMap<String, Scalar> {
    fn lookup(&self, attr: &str) -> Option<Scalar> {
        self.get(attr).cloned()
    }
}

/// Evaluate a simple expression against bindings.
///
/// Missing attributes and kind mismatches (number vs text) evaluate to
/// `false`, matching the DSMS behaviour of dropping tuples a predicate
/// cannot be decided for.
#[must_use]
pub fn eval_simple(simple: &SimpleExpr, bindings: &dyn Bindings) -> bool {
    let Some(actual) = bindings.lookup(&simple.attr) else {
        return false;
    };
    compare(&actual, simple.op, &simple.value)
}

/// Compare a bound value against the literal of a simple expression.
#[must_use]
pub fn compare(actual: &Scalar, op: CmpOp, literal: &Scalar) -> bool {
    match actual.partial_cmp_same_kind(literal) {
        Some(ord) => op.apply_ord(ord),
        None => false,
    }
}

/// Evaluate a complex expression against bindings.
#[must_use]
pub fn eval(expr: &Expr, bindings: &dyn Bindings) -> bool {
    match expr {
        Expr::True => true,
        Expr::False => false,
        Expr::Simple(s) => eval_simple(s, bindings),
        Expr::Not(inner) => !eval(inner, bindings),
        Expr::And(a, b) => eval(a, bindings) && eval(b, bindings),
        Expr::Or(a, b) => eval(a, bindings) || eval(b, bindings),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;

    #[test]
    fn evaluates_numeric_comparisons() {
        let b = MapBindings::new().with_number("rainrate", 7.5);
        assert!(eval(&parse_expr("rainrate > 5").unwrap(), &b));
        assert!(!eval(&parse_expr("rainrate > 10").unwrap(), &b));
        assert!(eval(&parse_expr("rainrate <= 7.5").unwrap(), &b));
        assert!(eval(&parse_expr("rainrate != 3").unwrap(), &b));
    }

    #[test]
    fn evaluates_string_equality() {
        let b = MapBindings::new().with_text("station", "S11");
        assert!(eval(&parse_expr("station = 'S11'").unwrap(), &b));
        assert!(!eval(&parse_expr("station = 'S12'").unwrap(), &b));
        assert!(eval(&parse_expr("station != 'S12'").unwrap(), &b));
    }

    #[test]
    fn missing_attribute_is_false() {
        let b = MapBindings::new();
        assert!(!eval(&parse_expr("a > 1").unwrap(), &b));
        // ... but NOT over a missing attribute flips it, as in standard
        // three-valued-free boolean evaluation of our engine.
        assert!(eval(&parse_expr("NOT (a > 1)").unwrap(), &b));
    }

    #[test]
    fn kind_mismatch_is_false() {
        let b = MapBindings::new().with_text("a", "hello");
        assert!(!eval(&parse_expr("a > 1").unwrap(), &b));
        let b = MapBindings::new().with_number("a", 3.0);
        assert!(!eval(&parse_expr("a = 'hello'").unwrap(), &b));
    }

    #[test]
    fn boolean_connectives() {
        let b = MapBindings::new().with_number("a", 5.0).with_number("b", 10.0);
        assert!(eval(&parse_expr("a = 5 AND b = 10").unwrap(), &b));
        assert!(!eval(&parse_expr("a = 5 AND b = 11").unwrap(), &b));
        assert!(eval(&parse_expr("a = 6 OR b = 10").unwrap(), &b));
        assert!(eval(&parse_expr("NOT (a = 6)").unwrap(), &b));
        assert!(eval(&parse_expr("TRUE").unwrap(), &b));
        assert!(!eval(&parse_expr("FALSE").unwrap(), &b));
    }

    #[test]
    fn paper_example3_filtering() {
        // Stream fragment (..., 9,10,11,3,2,6,9,8,7,2,13,...) with
        // policy filter a > 8 and user filter a > 5: the user receives only
        // tuples satisfying both.
        let both = parse_expr("a > 8 AND a > 5").unwrap();
        let values = [9.0, 10.0, 11.0, 3.0, 2.0, 6.0, 9.0, 8.0, 7.0, 2.0, 13.0];
        let surviving: Vec<f64> = values
            .iter()
            .copied()
            .filter(|v| eval(&both, &MapBindings::new().with_number("a", *v)))
            .collect();
        assert_eq!(surviving, vec![9.0, 10.0, 11.0, 9.0, 13.0]);
    }

    #[test]
    fn hashmap_bindings_work() {
        let mut m: HashMap<String, Scalar> = HashMap::new();
        m.insert("x".into(), Scalar::Number(2.0));
        assert!(eval(&parse_expr("x >= 2").unwrap(), &m));
    }
}
