//! Infix → postfix conversion (part of Step 2 of the Section 3.5 procedure).
//!
//! The paper converts the NOT-free condition to postfix (reverse Polish)
//! form with a standard stack-based algorithm, and then *evaluates* the
//! postfix sequence to build the DNF, applying the distributive law whenever
//! the operator is `AND` and concatenating operands whenever it is `OR`.
//! This module produces the postfix sequence; [`crate::dnf`] performs the
//! evaluation.

use crate::ast::{Expr, SimpleExpr};

/// One element of a postfix sequence.
#[derive(Debug, Clone, PartialEq)]
pub enum PostfixTok {
    /// A simple-expression operand.
    Operand(SimpleExpr),
    /// Constant true operand.
    True,
    /// Constant false operand.
    False,
    /// Binary AND operator.
    And,
    /// Binary OR operator.
    Or,
}

/// Convert a NOT-free expression into its postfix sequence.
///
/// # Panics
/// Panics if the expression still contains a `Not` node — callers must run
/// [`crate::normalize::eliminate_not`] first. (This is an internal invariant;
/// the public entry point [`crate::dnf::Dnf::from_expr`] always does so.)
#[must_use]
pub fn to_postfix(expr: &Expr) -> Vec<PostfixTok> {
    let mut out = Vec::with_capacity(expr.leaf_count() * 2);
    emit(expr, &mut out);
    out
}

fn emit(expr: &Expr, out: &mut Vec<PostfixTok>) {
    match expr {
        Expr::True => out.push(PostfixTok::True),
        Expr::False => out.push(PostfixTok::False),
        Expr::Simple(s) => out.push(PostfixTok::Operand(s.clone())),
        Expr::And(a, b) => {
            emit(a, out);
            emit(b, out);
            out.push(PostfixTok::And);
        }
        Expr::Or(a, b) => {
            emit(a, out);
            emit(b, out);
            out.push(PostfixTok::Or);
        }
        Expr::Not(_) => {
            panic!("to_postfix requires a NOT-free expression; run eliminate_not first")
        }
    }
}

/// Render the postfix sequence in the compact textual form the paper uses in
/// Example 4 (e.g. `A B & C | D E & &`), mainly for debugging and docs.
#[must_use]
pub fn postfix_to_string(tokens: &[PostfixTok]) -> String {
    let mut parts = Vec::with_capacity(tokens.len());
    for t in tokens {
        match t {
            PostfixTok::Operand(s) => parts.push(format!("[{s}]")),
            PostfixTok::True => parts.push("TRUE".to_string()),
            PostfixTok::False => parts.push("FALSE".to_string()),
            PostfixTok::And => parts.push("&".to_string()),
            PostfixTok::Or => parts.push("|".to_string()),
        }
    }
    parts.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normalize::eliminate_not;
    use crate::parser::parse_expr;

    #[test]
    fn flat_and_produces_operands_then_operator() {
        let e = parse_expr("a > 1 AND b < 2").unwrap();
        let pf = to_postfix(&e);
        assert_eq!(pf.len(), 3);
        assert!(matches!(pf[0], PostfixTok::Operand(_)));
        assert!(matches!(pf[1], PostfixTok::Operand(_)));
        assert_eq!(pf[2], PostfixTok::And);
    }

    #[test]
    fn example4_shape() {
        // ((A & B) | C) & (D & E) has postfix A B & C | D E & &
        let e = parse_expr("((a > 20 AND a < 30) OR a = 40) AND (a < 10 AND b = 20)").unwrap();
        let pf = to_postfix(&e);
        let ops: Vec<&PostfixTok> =
            pf.iter().filter(|t| matches!(t, PostfixTok::And | PostfixTok::Or)).collect();
        assert_eq!(ops.len(), 4);
        assert_eq!(pf.len(), 9);
        // Last operator must be the top-level AND.
        assert_eq!(*pf.last().unwrap(), PostfixTok::And);
        let rendered = postfix_to_string(&pf);
        assert!(rendered.ends_with('&'));
        assert!(rendered.contains('|'));
    }

    #[test]
    fn constants_become_operands() {
        let e = parse_expr("TRUE OR a > 1").unwrap();
        // Constant folding in the parser collapses this to TRUE.
        let pf = to_postfix(&eliminate_not(&e));
        assert!(!pf.is_empty());
    }

    #[test]
    #[should_panic(expected = "NOT-free")]
    fn panics_on_not_node() {
        let e = parse_expr("NOT (a > 1)").unwrap();
        let _ = to_postfix(&e);
    }

    #[test]
    fn operand_count_matches_leaf_count() {
        let e = parse_expr("(a > 1 OR b > 2) AND (c > 3 OR d > 4) AND e = 5").unwrap();
        let pf = to_postfix(&e);
        let operands = pf.iter().filter(|t| matches!(t, PostfixTok::Operand(_))).count();
        assert_eq!(operands, e.leaf_count());
        let operators = pf.iter().filter(|t| matches!(t, PostfixTok::And | PostfixTok::Or)).count();
        assert_eq!(operators, operands - 1);
    }
}
