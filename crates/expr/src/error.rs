//! Error types for the predicate engine.

use std::fmt;

/// Errors produced while lexing, parsing or manipulating expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprError {
    /// The lexer hit a character it does not understand.
    UnexpectedChar { ch: char, position: usize },
    /// A string literal was opened but never closed.
    UnterminatedString { position: usize },
    /// A numeric literal could not be parsed.
    BadNumber { text: String, position: usize },
    /// The parser expected one kind of token and saw another.
    UnexpectedToken { expected: String, found: String, position: usize },
    /// Input ended while the parser still expected more tokens.
    UnexpectedEof { expected: String },
    /// A comparison between incompatible scalar kinds (e.g. `x < 'abc'` vs `x < 3`).
    TypeMismatch { attribute: String, detail: String },
    /// Ordering operators applied to string literals (the paper only allows
    /// `=` and `≠` for strings).
    InvalidStringComparison { attribute: String, op: String },
    /// The expression is empty where one was required.
    EmptyExpression,
}

impl fmt::Display for ExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExprError::UnexpectedChar { ch, position } => {
                write!(f, "unexpected character '{ch}' at offset {position}")
            }
            ExprError::UnterminatedString { position } => {
                write!(f, "unterminated string literal starting at offset {position}")
            }
            ExprError::BadNumber { text, position } => {
                write!(f, "invalid numeric literal '{text}' at offset {position}")
            }
            ExprError::UnexpectedToken { expected, found, position } => {
                write!(f, "expected {expected} but found {found} at offset {position}")
            }
            ExprError::UnexpectedEof { expected } => {
                write!(f, "unexpected end of input, expected {expected}")
            }
            ExprError::TypeMismatch { attribute, detail } => {
                write!(f, "type mismatch on attribute '{attribute}': {detail}")
            }
            ExprError::InvalidStringComparison { attribute, op } => {
                write!(
                    f,
                    "operator '{op}' cannot be applied to a string literal (attribute '{attribute}'); only = and != are allowed"
                )
            }
            ExprError::EmptyExpression => write!(f, "empty expression"),
        }
    }
}

impl std::error::Error for ExprError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = ExprError::UnexpectedChar { ch: '#', position: 3 };
        assert!(e.to_string().contains('#'));
        let e = ExprError::UnexpectedEof { expected: "expression".into() };
        assert!(e.to_string().contains("end of input"));
        let e = ExprError::InvalidStringComparison { attribute: "a".into(), op: "<".into() };
        assert!(e.to_string().contains("only = and !="));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(ExprError::EmptyExpression, ExprError::EmptyExpression);
        assert_ne!(ExprError::EmptyExpression, ExprError::UnterminatedString { position: 0 });
    }
}
