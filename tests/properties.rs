//! Property-based tests (proptest) over the core invariants:
//!
//! * NOT-elimination, DNF conversion and simplification preserve the truth
//!   table of arbitrary filter conditions;
//! * `checkTwoSimpleExpression` verdicts agree with a brute-force model of
//!   the number line;
//! * obligations ⇄ query-graph translation is lossless for arbitrary graphs;
//! * sliding-window buffering emits exactly the windows the specification
//!   prescribes;
//! * the Section 3.4 reconstruction always succeeds against unconstrained
//!   multi-window access (which is why the guard exists).

use exacml_dsms::{AggFunc, AggSpec, QueryGraph, QueryGraphBuilder, WindowSpec};
use exacml_expr::{
    check_two_simple, eval::eval, normalize::eliminate_not, normalize::is_not_free, parse_expr,
    simplify, CmpOp, Dnf, Expr, MapBindings, SimpleExpr, Verdict,
};
use exacml_plus::attack::reconstruct_from_sums;
use exacml_plus::{graph_from_obligations, obligations_from_graph};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Expression generators
// ---------------------------------------------------------------------------

fn arb_cmp_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Lt),
        Just(CmpOp::Gt),
        Just(CmpOp::Le),
        Just(CmpOp::Ge),
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
    ]
}

fn arb_simple() -> impl Strategy<Value = Expr> {
    (prop_oneof![Just("a"), Just("b"), Just("c")], arb_cmp_op(), -5i32..15)
        .prop_map(|(attr, op, v)| Expr::Simple(SimpleExpr::new(attr, op, f64::from(v))))
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    arb_simple().prop_recursive(4, 32, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            inner.prop_map(|e| Expr::Not(Box::new(e))),
        ]
    })
}

fn grid_bindings() -> Vec<MapBindings> {
    let mut grid = Vec::new();
    for a in (-6..16).step_by(3) {
        for b in (-6..16).step_by(4) {
            for c in [-1i32, 7] {
                grid.push(
                    MapBindings::new()
                        .with_number("a", f64::from(a))
                        .with_number("b", f64::from(b))
                        .with_number("c", f64::from(c)),
                );
            }
        }
    }
    grid
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn not_elimination_preserves_truth_table(expr in arb_expr()) {
        let rewritten = eliminate_not(&expr);
        prop_assert!(is_not_free(&rewritten));
        for bindings in grid_bindings() {
            prop_assert_eq!(eval(&expr, &bindings), eval(&rewritten, &bindings));
        }
    }

    #[test]
    fn dnf_preserves_truth_table(expr in arb_expr()) {
        let dnf = Dnf::from_expr(&expr);
        let roundtrip = dnf.to_expr();
        for bindings in grid_bindings() {
            prop_assert_eq!(eval(&expr, &bindings), eval(&roundtrip, &bindings));
        }
    }

    #[test]
    fn simplify_preserves_truth_table_and_never_grows(expr in arb_expr()) {
        let simplified = simplify(&expr);
        for bindings in grid_bindings() {
            prop_assert_eq!(eval(&expr, &bindings), eval(&simplified, &bindings));
        }
        // Simplification must not exceed the size of the plain DNF rendering.
        prop_assert!(simplified.leaf_count() <= Dnf::from_expr(&expr).to_expr().leaf_count());
    }

    #[test]
    fn display_parse_round_trip(expr in arb_expr()) {
        let printed = expr.to_string();
        let reparsed = parse_expr(&printed).unwrap();
        for bindings in grid_bindings() {
            prop_assert_eq!(eval(&expr, &bindings), eval(&reparsed, &bindings));
        }
    }

    #[test]
    fn pairwise_check_agrees_with_brute_force(
        op1 in arb_cmp_op(), v1 in -10i32..20, op2 in arb_cmp_op(), v2 in -10i32..20
    ) {
        let policy = SimpleExpr::new("x", op1, f64::from(v1));
        let user = SimpleExpr::new("x", op2, f64::from(v2));
        let verdict = check_two_simple(&policy, &user);
        // Sample the number line densely, including half-points around every
        // threshold, so subset/emptiness decisions are witnessed.
        let sample: Vec<f64> = (-25..=45).map(|i| f64::from(i) * 0.5).collect();
        let in_policy = |x: f64| op1.apply_ord(x.partial_cmp(&f64::from(v1)).unwrap());
        let in_user = |x: f64| op2.apply_ord(x.partial_cmp(&f64::from(v2)).unwrap());
        let both: Vec<f64> = sample.iter().copied().filter(|x| in_policy(*x) && in_user(*x)).collect();
        let user_only: Vec<f64> = sample.iter().copied().filter(|x| in_user(*x)).collect();
        match verdict {
            Verdict::Nr => prop_assert!(both.is_empty()),
            Verdict::Compatible => prop_assert_eq!(both.len(), user_only.len()),
            Verdict::Pr => {
                // The policy removes at least one sampled user value, or the
                // satisfiable region lies between sample points (never the
                // case on the 0.5 grid with integer thresholds).
                prop_assert!(both.len() < user_only.len() || user_only.is_empty());
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Query graphs and obligations
// ---------------------------------------------------------------------------

fn arb_graph() -> impl Strategy<Value = QueryGraph> {
    let attrs = ["samplingtime", "rainrate", "windspeed", "temperature", "humidity"];
    let arb_filter =
        (0usize..4, 0.0f64..100.0).prop_map(move |(i, v)| format!("{} > {v:.1}", attrs[i + 1]));
    let arb_map = proptest::collection::vec(1usize..5, 1..4);
    let arb_agg = (
        4u64..20,
        1u64..4,
        0usize..4,
        prop_oneof![
            Just(AggFunc::Avg),
            Just(AggFunc::Max),
            Just(AggFunc::Min),
            Just(AggFunc::Sum),
            Just(AggFunc::Count)
        ],
    );
    (proptest::bool::ANY, proptest::bool::ANY, proptest::bool::ANY, arb_filter, arb_map, arb_agg)
        .prop_map(move |(with_f, with_m, with_a, filter, map_idx, (size, adv, agg_idx, func))| {
            let mut builder = QueryGraphBuilder::on_stream("weather");
            if with_f {
                builder = builder.filter_str(&filter).unwrap();
            }
            if with_m {
                let mut names: Vec<&str> = vec!["samplingtime"];
                for i in &map_idx {
                    names.push(attrs[*i]);
                }
                builder = builder.map(names);
            }
            if with_a {
                builder = builder.aggregate(
                    WindowSpec::tuples(size, adv.min(size)),
                    vec![
                        AggSpec::new("samplingtime", AggFunc::LastValue),
                        AggSpec::new(attrs[agg_idx + 1], func),
                    ],
                );
            }
            builder.build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn obligations_round_trip_for_arbitrary_graphs(graph in arb_graph()) {
        let obligations = obligations_from_graph(&graph);
        prop_assert_eq!(obligations.len(), graph.len());
        let rebuilt = graph_from_obligations("weather", &obligations).unwrap();
        prop_assert_eq!(rebuilt, graph);
    }

    #[test]
    fn window_coarsening_is_reflexive_and_antitone(
        size in 1u64..30, advance in 1u64..30, extra_size in 0u64..10, extra_adv in 0u64..10
    ) {
        let advance = advance.min(size);
        let policy = WindowSpec::tuples(size, advance);
        prop_assert!(policy.is_coarsening_of(&policy));
        let coarser = WindowSpec::tuples(size + extra_size, advance + extra_adv);
        prop_assert!(coarser.is_coarsening_of(&policy));
        if extra_size > 0 {
            prop_assert!(!policy.is_coarsening_of(&WindowSpec::tuples(size + extra_size, advance)));
        }
    }

    #[test]
    fn tuple_windows_emit_the_expected_count(
        size in 1u64..12, advance in 1u64..12, n in 0usize..80
    ) {
        use exacml_dsms::{Schema, Tuple, Value, DataType};
        use exacml_dsms::window::SlidingBuffer;
        let advance = advance.min(size);
        let schema = Schema::from_pairs([("samplingtime", DataType::Timestamp), ("v", DataType::Double)]);
        let mut buffer = SlidingBuffer::new(WindowSpec::tuples(size, advance));
        let mut emitted = 0usize;
        for i in 0..n {
            let t = Tuple::builder(&schema)
                .set("samplingtime", Value::Timestamp(i as i64))
                .set("v", i as f64)
                .finish()
                .unwrap();
            let windows = buffer.push(t);
            for w in &windows {
                prop_assert_eq!(w.len(), size as usize);
            }
            emitted += windows.len();
        }
        let expected = if n >= size as usize {
            1 + (n - size as usize) / advance as usize
        } else {
            0
        };
        prop_assert_eq!(emitted, expected);
    }

    #[test]
    fn reconstruction_recovers_the_suffix(
        values in proptest::collection::vec(-50.0f64..50.0, 12..40),
        base in 2u64..5,
        step in 1u64..4,
    ) {
        let step = step.min(base);
        let outcome = exacml_plus::attack::simulate_attack(&values, base, step);
        for (k, reconstructed) in outcome.reconstructed.iter().enumerate() {
            let original = values[base as usize + k];
            prop_assert!((reconstructed - original).abs() < 1e-6,
                "position {}: {} vs {}", k, reconstructed, original);
        }
    }

    #[test]
    fn reconstruct_from_sums_handles_arbitrary_lengths(
        rows in proptest::collection::vec(proptest::collection::vec(-10.0f64..10.0, 0..8), 0..5),
        step in 0usize..4,
    ) {
        // Never panics, and the output length is bounded by the number of
        // usable difference streams (at most `step`) times the shortest row
        // actually consumed (only the first `step + 1` rows participate).
        let out = reconstruct_from_sums(&rows, 3, step);
        let usable = rows.len().min(step + 1);
        let min_used = rows.iter().take(usable).map(Vec::len).min().unwrap_or(0);
        prop_assert!(out.len() <= min_used.saturating_mul(step.max(1)));
    }
}

// ---------------------------------------------------------------------------
// Shared plans vs. per-subscriber deployments
// ---------------------------------------------------------------------------

mod plan_sharing_equivalence {
    use super::*;
    use exacml_dsms::{Schema, Tuple, Value};
    use exacml_plus::{DataServer, ServerConfig, StreamPolicyBuilder, UserQuery};
    use exacml_simnet::Topology;
    use exacml_xacml::Request;
    use std::sync::Arc;

    const FILTER_ATTRS: [&str; 3] = ["rainrate", "windspeed", "temperature"];
    const PROJECTIONS: [&[&str]; 3] = [
        &["samplingtime", "rainrate"],
        &["samplingtime", "rainrate", "windspeed"],
        &["samplingtime", "windspeed", "temperature"],
    ];

    /// One subscriber's view of the stream. Optional picks are encoded as
    /// `index == pool size` (the vendored proptest stand-in has no
    /// `option::of`).
    #[derive(Debug, Clone)]
    struct SubscriberSpec {
        /// `(attr, threshold)`; `attr == FILTER_ATTRS.len()` means no filter.
        filter: (usize, u32),
        /// Index into `PROJECTIONS`; `== len` means no projection.
        projection: usize,
        /// `(window, advance)` for `avg(rainrate)`; `window == 0` means no
        /// aggregation.
        window: (u64, u64),
    }

    impl SubscriberSpec {
        fn to_query(&self) -> Option<UserQuery> {
            let mut query = UserQuery::for_stream("weather");
            let (attr, threshold) = self.filter;
            if attr < FILTER_ATTRS.len() {
                query = query.with_filter(format!("{} > {}", FILTER_ATTRS[attr], threshold));
            }
            if self.projection < PROJECTIONS.len() {
                query = query.with_map(PROJECTIONS[self.projection].iter().copied());
            }
            let (window, advance) = self.window;
            if window > 0 {
                query = query.with_aggregation(
                    WindowSpec::tuples(window, advance.clamp(1, window)),
                    vec![AggSpec::new("rainrate", AggFunc::Avg)],
                );
            }
            (!query.is_empty()).then_some(query)
        }
    }

    fn arb_subscriber() -> impl Strategy<Value = SubscriberSpec> {
        ((0usize..=FILTER_ATTRS.len(), 0u32..50), 0usize..=PROJECTIONS.len(), (0u64..6, 1u64..4))
            .prop_map(|(filter, projection, window)| SubscriberSpec { filter, projection, window })
    }

    fn server(share_plans: bool) -> DataServer {
        DataServer::new(ServerConfig {
            share_plans,
            deploy_on_partial_result: true,
            topology: Topology::local(),
            ..ServerConfig::default()
        })
    }

    fn weather_tuple(schema: &Arc<Schema>, i: i64, rain: f64, wind: f64) -> Tuple {
        Tuple::builder_shared(schema)
            .set("samplingtime", Value::Timestamp(i * 1000))
            .set("rainrate", rain)
            .set("windspeed", wind)
            .finish_with_defaults()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The tentpole's correctness property: for any set of overlapping
        /// subscriber queries, a server that merges them onto shared
        /// compiled plans delivers to every subscriber exactly what a
        /// server deploying one graph per subscriber delivers — same
        /// tuples, same order — while compiling at most as many plans.
        #[test]
        fn merged_delivery_equals_per_subscriber_deployment(
            subs in proptest::collection::vec(arb_subscriber(), 1..6),
            policy_threshold in 0u32..20,
            rows in proptest::collection::vec((0u32..60, 0u32..60), 0..30),
        ) {
            let merged = server(true);
            let unmerged = server(false);
            let schema = Schema::weather_example().shared();
            for backend in [&merged, &unmerged] {
                backend.register_stream("weather", Schema::weather_example()).unwrap();
                backend
                    .load_policy(
                        StreamPolicyBuilder::new("open", "weather")
                            .filter(format!("rainrate > {policy_threshold}"))
                            .build(),
                    )
                    .unwrap();
            }

            // Subscribe every spec on both servers; admission must agree.
            let mut receivers = Vec::new();
            for (i, spec) in subs.iter().enumerate() {
                let request = Request::subscribe(&format!("user{i}"), "weather");
                let query = spec.to_query();
                let on_merged = merged.handle_request(&request, query.as_ref());
                let on_unmerged = unmerged.handle_request(&request, query.as_ref());
                prop_assert_eq!(
                    on_merged.is_ok(), on_unmerged.is_ok(),
                    "admission diverged for {:?}", spec
                );
                if let (Ok(a), Ok(b)) = (on_merged, on_unmerged) {
                    receivers.push((
                        i,
                        merged.subscribe(&a.handle).unwrap(),
                        unmerged.subscribe(&b.handle).unwrap(),
                    ));
                }
            }
            // Sharing never compiles more plans than one-per-subscriber.
            prop_assert!(merged.plan_count() <= unmerged.plan_count());
            prop_assert_eq!(unmerged.plan_count(), receivers.len());

            let batch: Vec<Tuple> = rows
                .iter()
                .enumerate()
                .map(|(i, (rain, wind))| {
                    weather_tuple(&schema, i as i64, f64::from(*rain), f64::from(*wind))
                })
                .collect();
            merged.push_batch("weather", batch.clone()).unwrap();
            unmerged.push_batch("weather", batch).unwrap();

            for (i, shared_rx, solo_rx) in receivers {
                let via_shared: Vec<Tuple> = shared_rx.try_iter().collect();
                let via_solo: Vec<Tuple> = solo_rx.try_iter().collect();
                prop_assert_eq!(
                    via_shared, via_solo,
                    "subscriber {} ({:?}) saw different tuples", i, subs[i]
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Indexed PDP vs. linear-scan reference
// ---------------------------------------------------------------------------

mod pdp_equivalence {
    use super::*;
    use exacml_xacml::{
        AttributeCategory, AttributeMatch, AttributeValue, Pdp, Policy, PolicyCombiningAlg,
        PolicyStore, Request, Rule, Target,
    };
    use std::sync::Arc;

    const SUBJECTS: [&str; 3] = ["LTA", "EMA", "PUB"];
    const STREAMS: [&str; 3] = ["weather", "gps", "traffic"];
    const ACTIONS: [&str; 2] = ["subscribe", "read"];

    /// A compact description of one random policy, expanded into a `Policy`
    /// by `build_policy`. `target_shape`: 0 = triple target (indexable),
    /// 1 = empty target, 2 = subject-only target, 3 = triple target plus an
    /// extra role matcher (still indexable).
    #[derive(Debug, Clone)]
    struct PolicySpec {
        target_shape: u8,
        subject: usize,
        stream: usize,
        action: usize,
        deny: bool,
    }

    fn arb_policy_spec() -> impl Strategy<Value = PolicySpec> {
        (
            0u8..4,
            0usize..SUBJECTS.len(),
            0usize..STREAMS.len(),
            0usize..ACTIONS.len(),
            proptest::bool::ANY,
        )
            .prop_map(|(target_shape, subject, stream, action, deny)| PolicySpec {
                target_shape,
                subject,
                stream,
                action,
                deny,
            })
    }

    fn build_policy(index: usize, spec: &PolicySpec) -> Policy {
        use exacml_xacml::request::ids;
        let target = match spec.target_shape {
            0 => Target::subject_resource_action(
                SUBJECTS[spec.subject],
                STREAMS[spec.stream],
                ACTIONS[spec.action],
            ),
            1 => Target::any(),
            2 => Target::new(vec![AttributeMatch::new(
                AttributeCategory::Subject,
                ids::SUBJECT_ID,
                SUBJECTS[spec.subject],
            )]),
            _ => {
                let mut t = Target::subject_resource_action(
                    SUBJECTS[spec.subject],
                    STREAMS[spec.stream],
                    ACTIONS[spec.action],
                );
                t.matches.push(AttributeMatch::new(
                    AttributeCategory::Subject,
                    ids::SUBJECT_ROLE,
                    "agency",
                ));
                t
            }
        };
        let rule = if spec.deny { Rule::deny_all("r") } else { Rule::permit_all("r") };
        Policy::new(format!("p{index}")).with_target(target).with_rule(rule)
    }

    fn arb_request() -> impl Strategy<Value = Request> {
        use exacml_xacml::request::ids;
        // Optional picks are encoded as `index == pool size` (the vendored
        // proptest stand-in has no `option::of`).
        (
            0usize..=SUBJECTS.len(),
            0usize..=STREAMS.len(),
            0usize..=ACTIONS.len(),
            proptest::bool::ANY,
            proptest::bool::ANY,
        )
            .prop_map(|(subject, stream, action, with_role, extra_subject)| {
                let subject = (subject < SUBJECTS.len()).then_some(subject);
                let stream = (stream < STREAMS.len()).then_some(stream);
                let action = (action < ACTIONS.len()).then_some(action);
                let mut request = Request::new();
                if let Some(s) = subject {
                    request =
                        request.with_subject(ids::SUBJECT_ID, AttributeValue::string(SUBJECTS[s]));
                    if extra_subject {
                        // A second subject-id value makes the request
                        // ineligible for the triple index: the fallback path
                        // must agree with the reference too.
                        request = request.with_subject(
                            ids::SUBJECT_ID,
                            AttributeValue::string(SUBJECTS[(s + 1) % SUBJECTS.len()]),
                        );
                    }
                }
                if let Some(r) = stream {
                    request =
                        request.with_resource(ids::RESOURCE_ID, AttributeValue::string(STREAMS[r]));
                }
                if let Some(a) = action {
                    request =
                        request.with_action(ids::ACTION_ID, AttributeValue::string(ACTIONS[a]));
                }
                if with_role {
                    request =
                        request.with_subject(ids::SUBJECT_ROLE, AttributeValue::string("agency"));
                }
                request
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The indexed PDP (with and without its decision cache) returns
        /// bit-identical decisions and obligations to the linear-scan
        /// reference on random stores, under every combining algorithm.
        #[test]
        fn indexed_pdp_matches_linear_reference(
            specs in proptest::collection::vec(arb_policy_spec(), 0..24),
            requests in proptest::collection::vec(arb_request(), 1..8),
        ) {
            let store = Arc::new(PolicyStore::new());
            for (i, spec) in specs.iter().enumerate() {
                store.add(build_policy(i, spec)).unwrap();
            }
            for combining in [
                PolicyCombiningAlg::FirstApplicable,
                PolicyCombiningAlg::PermitOverrides,
                PolicyCombiningAlg::DenyOverrides,
            ] {
                let pdp = Pdp::new(Arc::clone(&store)).with_combining(combining);
                for request in &requests {
                    let reference = pdp.evaluate_linear(request);
                    prop_assert_eq!(&pdp.evaluate_uncached(request), &reference,
                        "index diverged under {:?} for {}", combining, request);
                    // Cold (cache-filling) and warm (cache-served) paths.
                    prop_assert_eq!(&pdp.evaluate(request), &reference);
                    prop_assert_eq!(&pdp.evaluate(request), &reference);
                }
            }
        }

        /// Removing a random policy keeps the indexed PDP aligned with the
        /// reference (the index rebuild and cache invalidation are exercised
        /// mid-sequence).
        #[test]
        fn indexed_pdp_stays_aligned_across_mutations(
            specs in proptest::collection::vec(arb_policy_spec(), 2..16),
            remove_at in 0usize..16,
            request in arb_request(),
        ) {
            let store = Arc::new(PolicyStore::new());
            for (i, spec) in specs.iter().enumerate() {
                store.add(build_policy(i, spec)).unwrap();
            }
            let pdp = Pdp::new(Arc::clone(&store));
            prop_assert_eq!(pdp.evaluate(&request), pdp.evaluate_linear(&request));
            let victim = format!("p{}", remove_at % specs.len());
            store.remove(&victim).unwrap();
            prop_assert_eq!(pdp.evaluate(&request), pdp.evaluate_linear(&request));
            // Re-adding under the same id lands at the *end* of the order;
            // the indexed view must still agree.
            store.add(build_policy(remove_at % specs.len(), &specs[remove_at % specs.len()])).unwrap();
            prop_assert_eq!(pdp.evaluate(&request), pdp.evaluate_linear(&request));
        }
    }
}

// ---------------------------------------------------------------------------
// Telemetry histogram merge
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Merging two latency-histogram snapshots (A ⊎ B) preserves the total
    /// observation count, the per-bucket sums, the nanosecond totals, and
    /// the highest occupied bucket — the invariants fabric aggregation
    /// relies on when it folds node snapshots into one.
    #[test]
    fn histogram_merge_preserves_count_and_max_bucket(
        a in proptest::collection::vec(0u64..1u64 << 48, 0..50),
        b in proptest::collection::vec(0u64..1u64 << 48, 0..50),
    ) {
        use exacml_telemetry::{bucket_of, Log2Histogram};

        let ha = Log2Histogram::new();
        let hb = Log2Histogram::new();
        for &nanos in &a {
            ha.record(nanos);
        }
        for &nanos in &b {
            hb.record(nanos);
        }
        let (sa, sb) = (ha.snapshot(), hb.snapshot());
        let mut merged = sa.clone();
        merged.merge(&sb);

        prop_assert_eq!(merged.count, (a.len() + b.len()) as u64);
        prop_assert_eq!(merged.total_nanos, a.iter().sum::<u64>() + b.iter().sum::<u64>());
        prop_assert_eq!(merged.max_nanos, a.iter().chain(&b).copied().max().unwrap_or(0));
        prop_assert_eq!(merged.buckets.iter().sum::<u64>(), merged.count);
        let expected_max_bucket = a.iter().chain(&b).map(|&nanos| bucket_of(nanos)).max();
        prop_assert_eq!(merged.max_bucket(), expected_max_bucket);
        // Merge is commutative bucket-wise.
        let mut flipped = sb;
        flipped.merge(&sa);
        prop_assert_eq!(&flipped.buckets, &merged.buckets);
        prop_assert_eq!(flipped.count, merged.count);
    }
}
