//! The paper's concrete worked examples, each reproduced as a test:
//!
//! * Example 1 / Figure 1 / Figure 2 — the NEA→LTA weather policy;
//! * Figure 4 — the user query and the merged StreamSQL;
//! * Example 2 — the multi-window reconstruction and its prevention;
//! * Example 3 — the PR and NR filter cases, down to the exact tuple values;
//! * Example 4 — the DNF-based conflict procedure;
//! * Table 1 / Table 2 — the obligation vocabulary and NOT-conversion rules.

use exacml::prelude::*;
use exacml_dsms::{AggFunc, AggSpec, Schema, Tuple, Value, WindowSpec};
use exacml_expr::{analyze_merge, parse_expr, CmpOp, Verdict};
use exacml_plus::obligations::ids;
use exacml_plus::{attack::simulate_attack, graph_from_obligations, merge_graphs, MergeOptions};

fn example1_policy() -> Policy {
    StreamPolicyBuilder::new("nea-weather-for-lta", "weather")
        .subject("LTA")
        .filter("rainrate > 5")
        .visible_attributes(["samplingtime", "rainrate", "windspeed"])
        .window(
            WindowSpec::tuples(5, 2),
            vec![
                AggSpec::new("samplingtime", AggFunc::LastValue),
                AggSpec::new("rainrate", AggFunc::Avg),
                AggSpec::new("windspeed", AggFunc::Max),
            ],
        )
        .build()
}

#[test]
fn example1_policy_encodes_figure2_obligations() {
    let policy = example1_policy();
    let ids_seen: Vec<&str> = policy.obligations.iter().map(|o| o.id.as_str()).collect();
    // Table 1: the three obligation types, one per operator.
    assert_eq!(ids_seen, vec![ids::STREAM_FILTER, ids::STREAM_MAP, ids::STREAM_WINDOW]);
    let window = &policy.obligations[2];
    assert_eq!(window.first_integer(ids::WINDOW_SIZE), Some(5));
    assert_eq!(window.first_integer(ids::WINDOW_STEP), Some(2));
    assert_eq!(window.first_text(ids::WINDOW_TYPE), Some("tuple"));
    let attrs: Vec<&str> =
        window.values_of(ids::WINDOW_ATTR).iter().map(|v| v.text.as_str()).collect();
    assert_eq!(attrs, vec!["samplingtime:lastval", "rainrate:avg", "windspeed:max"]);

    // Figure 1: the derived query graph is filter → map → window aggregation.
    let graph = graph_from_obligations("weather", &policy.obligations).unwrap();
    assert_eq!(graph.composition(), "FB+MB+AB");
    let out = graph.output_schema(&Schema::weather_example()).unwrap();
    assert_eq!(out.field_names(), vec!["lastvalsamplingtime", "avgrainrate", "maxwindspeed"]);
}

#[test]
fn figure4_user_query_merges_into_the_published_streamsql() {
    let policy_graph = graph_from_obligations("weather", &example1_policy().obligations).unwrap();
    let user_query = UserQuery::for_stream("weather")
        .with_filter("rainrate > 50")
        .with_map(["rainrate", "samplingtime"])
        .with_aggregation(
            WindowSpec::tuples(10, 2),
            vec![
                AggSpec::new("samplingtime", AggFunc::LastValue),
                AggSpec::new("rainrate", AggFunc::Avg),
            ],
        );
    let outcome =
        merge_graphs(&policy_graph, &user_query.to_graph().unwrap(), MergeOptions::default())
            .unwrap();
    let sql = exacml_dsms::streamsql::generate(&outcome.graph, &Schema::weather_example());
    // The elements of Figure 4(b).
    assert!(sql.contains("CREATE INPUT STREAM weather (samplingtime timestamp"));
    assert!(sql.contains("WHERE rainrate > 50"));
    assert!(sql.contains("SIZE 10 ADVANCE 2 TUPLES"));
    assert!(sql.contains("lastval(samplingtime) AS lastvalsamplingtime"));
    assert!(sql.contains("avg(rainrate) AS avgrainrate"));
    assert!(sql.trim_end().ends_with("INTO output;"));
}

#[test]
fn example2_reconstruction_and_single_access_prevention() {
    // The attack numbers of Example 2: S = a0, a1, a2, ... with windows of
    // sizes 3, 4, 5 and advance 2. S1 = (a0+a1+a2), (a2+a3+a4), ...
    let values: Vec<f64> = (0..16).map(f64::from).collect();
    let outcome = simulate_attack(&values, 3, 2);
    // The attacker recovers a3, a4, a5, ... exactly.
    assert!(outcome.reconstructed.len() >= 8);
    for (k, v) in outcome.reconstructed.iter().enumerate() {
        assert!((v - values[3 + k]).abs() < 1e-9);
    }

    // eXACML+ blocks the second window for the same (subject, stream) — on
    // a single server and on a fabric alike.
    for backend in [BackendBuilder::local().build(), BackendBuilder::fabric(3).build()] {
        backend
            .register_stream(
                "s",
                Schema::from_pairs([
                    ("samplingtime", exacml_dsms::DataType::Timestamp),
                    ("a", exacml_dsms::DataType::Double),
                ]),
            )
            .unwrap();
        backend
            .load_policy(
                StreamPolicyBuilder::new("sums", "s")
                    .subject("attacker")
                    .visible_attributes(["samplingtime", "a"])
                    .window(WindowSpec::tuples(3, 2), vec![AggSpec::new("a", AggFunc::Sum)])
                    .build(),
            )
            .unwrap();
        let attacker = Session::new(backend.clone(), "attacker");
        let window = |size: u64| {
            UserQuery::for_stream("s").with_aggregation(
                WindowSpec::tuples(size, 2),
                vec![AggSpec::new("a", AggFunc::Sum)],
            )
        };
        attacker.request_access("s", Some(&window(3))).unwrap();
        assert!(matches!(
            attacker.request_access("s", Some(&window(4))),
            Err(ExacmlError::MultipleAccess { .. })
        ));
        assert!(matches!(
            attacker.request_access("s", Some(&window(5))),
            Err(ExacmlError::MultipleAccess { .. })
        ));
    }
}

#[test]
fn example3_partial_and_empty_result_filtering() {
    // The stream fragment of Example 3.
    let fragment = [9.0, 10.0, 11.0, 3.0, 2.0, 6.0, 9.0, 8.0, 7.0, 2.0, 13.0];
    let schema = Schema::from_pairs([("a", exacml_dsms::DataType::Double)]);
    let apply = |condition: &str| -> Vec<f64> {
        let filter = exacml_dsms::FilterOp::parse(condition).unwrap();
        fragment
            .iter()
            .filter_map(|v| {
                let t = Tuple::builder(&schema).set("a", *v).finish().unwrap();
                filter.apply(t).map(|t| t.get_f64("a").unwrap())
            })
            .collect()
    };
    // What the user expects (a > 5) vs what they actually get (a > 8 AND a > 5).
    assert_eq!(apply("a > 5"), vec![9.0, 10.0, 11.0, 6.0, 9.0, 8.0, 7.0, 13.0]);
    assert_eq!(apply("a > 8 AND a > 5"), vec![9.0, 10.0, 11.0, 9.0, 13.0]);
    // The framework flags exactly these two situations.
    assert_eq!(
        analyze_merge(&parse_expr("a > 8").unwrap(), &parse_expr("a > 5").unwrap()).verdict,
        Verdict::Pr
    );
    assert_eq!(
        analyze_merge(&parse_expr("a < 4").unwrap(), &parse_expr("a > 5").unwrap()).verdict,
        Verdict::Nr
    );
    // With F1 = a < 4 only 3, 2, 2 remain, none of which satisfies a > 5.
    assert_eq!(apply("a < 4"), vec![3.0, 2.0, 2.0]);
    assert_eq!(apply("a < 4 AND a > 5"), Vec::<f64>::new());
}

#[test]
fn example4_dnf_procedure_returns_nr() {
    let c1 = parse_expr("(a > 20 AND a < 30) OR NOT (a != 40)").unwrap();
    let c2 = parse_expr("NOT (a >= 10) AND b = 20").unwrap();
    let report = analyze_merge(&c1, &c2);
    assert_eq!(report.verdict, Verdict::Nr);
    assert_eq!(report.clause_count, 2);
    let mut widths = [report.max_clause_width];
    widths.sort_unstable();
    assert_eq!(*widths.last().unwrap(), 4);
    // Every clause individually is contradictory, exactly as the paper walks
    // through with the (D,C) and (D,A) calls.
    assert!(report.clause_verdicts.iter().all(|v| *v == Verdict::Nr));
}

#[test]
fn table2_not_conversion_rules() {
    let cases = [
        (CmpOp::Gt, CmpOp::Le),
        (CmpOp::Lt, CmpOp::Ge),
        (CmpOp::Ge, CmpOp::Lt),
        (CmpOp::Le, CmpOp::Gt),
        (CmpOp::Eq, CmpOp::Ne),
        (CmpOp::Ne, CmpOp::Eq),
    ];
    for (op, negated) in cases {
        assert_eq!(op.negate(), negated);
    }
}

#[test]
fn figure5_matrix_for_ge_versus_le() {
    // S1 = x >= v1 (policy), S2 = x <= v2 (user): NR when v1 > v2, PR otherwise.
    for (v1, v2, expected) in
        [(10.0, 5.0, Verdict::Nr), (5.0, 10.0, Verdict::Pr), (7.0, 7.0, Verdict::Pr)]
    {
        let verdict = analyze_merge(
            &parse_expr(&format!("x >= {v1}")).unwrap(),
            &parse_expr(&format!("x <= {v2}")).unwrap(),
        )
        .verdict;
        assert_eq!(verdict, expected, "v1={v1}, v2={v2}");
    }
}

#[test]
fn workflow_steps_of_section_3_2_in_order() {
    // A single request exercises all five steps and reports a timing
    // decomposition covering each of them — identically on both backends.
    for backend in [BackendBuilder::local().build(), BackendBuilder::fabric(2).build()] {
        backend.register_stream("weather", Schema::weather_example()).unwrap();
        backend.load_policy(example1_policy()).unwrap();
        let session = Session::new(backend.clone(), "LTA");
        let granted = session.request_access("weather", None).unwrap();
        let timing = &granted.response.timing;
        assert!(timing.total >= timing.pdp);
        assert!(timing.total >= timing.dsms);
        assert!(granted.total_latency() >= timing.total);
        assert!(!granted.response.streamsql.is_empty());
        assert!(backend.handle_is_live(granted.handle()));
        // The derived stream really is windowed: pushing fewer tuples than
        // the window size yields nothing.
        let mut subscription = session.subscribe("weather").unwrap();
        let schema = Schema::weather_example();
        for i in 0..3 {
            let t = Tuple::builder(&schema)
                .set("samplingtime", Value::Timestamp(i))
                .set("rainrate", 10.0)
                .finish_with_defaults();
            backend.push("weather", t).unwrap();
        }
        assert_eq!(subscription.drain().len(), 0);
    }
}
