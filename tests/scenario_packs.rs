//! Scenario-pack matrix: every built-in pack runs against every backend
//! shape, and its expected-outcome oracles (grant/denial pins, delivery
//! counts, audit invariants) must hold on all of them. The pack outcome's
//! *semantic fingerprint* — decision counts, per-tap deliveries and the
//! decision-kind audit counts — must be byte-identical across shapes:
//! scenario semantics cannot depend on deployment topology.
//!
//! Also here:
//!
//! * the Section 3.4 attack-guard regression on all four shapes (not just
//!   the bare engine) — the reconstruction's second window series is never
//!   granted, so `reconstruct_from_sums` has nothing to difference;
//! * the pack JSON round-trip property — a pack serialized and reloaded
//!   runs to identical fingerprints and normalized audit trails per seed;
//! * the durability story — half a pack on a `DurableServer`, a simulated
//!   crash, recovery from the store, and the oracles still pass with the
//!   pre-crash audit prefix preserved verbatim;
//! * the nightly chaos soak (`#[ignore]`d): the adversarial pack on a
//!   replicated fabric inside a `FaultPlan` crash window.

use exacml::exacml_durable::{ReplicatedConfig, ReplicatedFabric};
use exacml::exacml_workload::packs;
use exacml::exacml_workload::runner::{normalized_audit_json, run_pack_checked, PackRun};
use exacml::exacml_workload::scenario::ScenarioPack;
use exacml::prelude::*;
use exacml_plus::attack::{reconstruct_from_sums, simulate_attack};
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

static STORE_COUNTER: AtomicUsize = AtomicUsize::new(0);

/// A fresh store directory for one durable backend under test.
fn durable_store_dir() -> std::path::PathBuf {
    let n = STORE_COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("exacml-packs-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The four backend shapes every pack runs against.
fn backends() -> Vec<(Arc<dyn Backend>, Option<std::path::PathBuf>)> {
    let durable_dir = durable_store_dir();
    let replicated_dir = durable_store_dir();
    vec![
        (BackendBuilder::local().build(), None),
        (BackendBuilder::fabric(3).build(), None),
        (BackendBuilder::durable(&durable_dir).build(), Some(durable_dir)),
        (BackendBuilder::replicated(3, &replicated_dir).build(), Some(replicated_dir)),
    ]
}

/// Run one pack on all four shapes, check every oracle, and pin the
/// cross-shape fingerprint equality.
fn pack_matrix(pack: &ScenarioPack) {
    let mut fingerprints = Vec::new();
    for (backend, store) in backends() {
        let outcome = run_pack_checked(backend.as_ref(), pack);
        fingerprints.push((outcome.backend_kind.clone(), outcome.semantic_fingerprint()));
        drop(backend);
        if let Some(dir) = store {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
    let (reference_kind, reference) = &fingerprints[0];
    for (kind, fingerprint) in &fingerprints[1..] {
        assert_eq!(
            fingerprint, reference,
            "pack '{}': fingerprint on {kind} diverges from {reference_kind}",
            pack.name
        );
    }
}

#[test]
fn smart_city_pack_on_all_shapes() {
    pack_matrix(&packs::smart_city());
}

#[test]
fn financial_ticks_pack_on_all_shapes() {
    pack_matrix(&packs::financial_ticks());
}

#[test]
fn iot_fleet_pack_on_all_shapes() {
    pack_matrix(&packs::iot_fleet());
}

#[test]
fn adversarial_pack_on_all_shapes() {
    pack_matrix(&packs::adversarial());
}

/// The committed pack files drive the exact same matrix — what CI's
/// `scenario_packs` job executes is the JSON on disk, not the constants.
#[test]
fn pack_files_run_green_on_local_shape() {
    for pack in packs::all() {
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("crates/workload/packs")
            .join(format!("{}.json", pack.name));
        let json = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        let loaded = ScenarioPack::from_json_str(&json)
            .unwrap_or_else(|e| panic!("{} does not parse: {e}", path.display()));
        let backend = BackendBuilder::local().build();
        run_pack_checked(backend.as_ref(), &loaded);
    }
}

// ---------------------------------------------------------------------------
// Satellite: the Section 3.4 guard holds on every shape, not just the bare
// engine.
// ---------------------------------------------------------------------------

/// Example 2's reconstruction against the *unguarded* engine primitives
/// succeeds — which is exactly why every deployed shape must refuse the
/// second window. On each shape: the attacker gets window size 3, is blocked
/// on sizes 4 and 5 (audited), and the single granted series gives
/// `reconstruct_from_sums` nothing to difference.
#[test]
fn attack_guard_blocks_reconstruction_on_every_shape() {
    // The unguarded baseline: with both series the attack recovers a3, a4, …
    let values: Vec<f64> = (0..16).map(f64::from).collect();
    assert!(
        simulate_attack(&values, 3, 2).reconstructed.len() >= 8,
        "the bare-engine attack must succeed, or the guard is pointless"
    );

    for (backend, store) in backends() {
        let kind = backend.backend_kind();
        backend
            .register_stream(
                "s",
                exacml_dsms::Schema::from_pairs([
                    ("samplingtime", exacml_dsms::DataType::Timestamp),
                    ("a", exacml_dsms::DataType::Double),
                ]),
            )
            .unwrap();
        backend
            .load_policy(
                StreamPolicyBuilder::new("sums", "s")
                    .subject("attacker")
                    .visible_attributes(["samplingtime", "a"])
                    .window(WindowSpec::tuples(3, 2), vec![AggSpec::new("a", AggFunc::Sum)])
                    .build(),
            )
            .unwrap();
        let window = |size: u64| {
            UserQuery::for_stream("s").with_aggregation(
                WindowSpec::tuples(size, 2),
                vec![AggSpec::new("a", AggFunc::Sum)],
            )
        };
        let request = Request::subscribe("attacker", "s");

        let granted = backend.handle_request(&request, Some(&window(3))).unwrap();
        let mut tap = backend.subscribe(granted.handle()).unwrap();
        for size in [4, 5] {
            assert!(
                matches!(
                    backend.handle_request(&request, Some(&window(size))),
                    Err(ExacmlError::MultipleAccess { .. })
                ),
                "{kind}: window size {size} must hit the single-access guard"
            );
        }

        let schema = Arc::new(exacml_dsms::Schema::from_pairs([
            ("samplingtime", exacml_dsms::DataType::Timestamp),
            ("a", exacml_dsms::DataType::Double),
        ]));
        backend
            .push_batch(
                "s",
                values
                    .iter()
                    .enumerate()
                    .map(|(i, v)| {
                        exacml_dsms::Tuple::builder_shared(&schema)
                            .set("samplingtime", exacml_dsms::Value::Timestamp(i as i64 * 1000))
                            .set("a", *v)
                            .finish_with_defaults()
                    })
                    .collect(),
            )
            .unwrap();

        // The one granted series alone cannot be differenced into values.
        let sums: Vec<f64> =
            tap.drain_settled().iter().filter_map(|t| t.tuple.get_f64("suma")).collect();
        assert!(!sums.is_empty(), "{kind}: the granted window must deliver");
        assert!(
            reconstruct_from_sums(&[sums], 3, 2).is_empty(),
            "{kind}: a single window series must not reconstruct anything"
        );

        // Both refusals are on the audit trail, exactly once per decision.
        let blocked =
            backend.audit_kind_counts().get("multiple-access-blocked").copied().unwrap_or(0);
        assert_eq!(blocked, 2, "{kind}: both guard refusals must be audited");

        drop(backend);
        if let Some(dir) = store {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}

// ---------------------------------------------------------------------------
// Satellite: JSON round-trip determinism.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A pack serialized to JSON and reloaded runs to the identical semantic
    /// fingerprint *and* the identical normalized audit trail, whatever the
    /// seed — the JSON form loses nothing the runtime can observe.
    #[test]
    fn pack_json_round_trip_is_deterministic(pack_index in 0usize..4, seed in 0u64..1_000_000) {
        let pack = packs::all().swap_remove(pack_index).with_seed(seed);
        let json = pack.to_json_string().unwrap();
        let reloaded = ScenarioPack::from_json_str(&json).unwrap();
        prop_assert_eq!(&reloaded, &pack);

        let run = |p: &ScenarioPack| {
            let backend = BackendBuilder::local().build();
            let outcome = exacml_workload::runner::run_pack(backend.as_ref(), p).unwrap();
            (outcome.semantic_fingerprint(), normalized_audit_json(&backend.audit_events()))
        };
        let (fingerprint_a, audit_a) = run(&pack);
        let (fingerprint_b, audit_b) = run(&reloaded);
        prop_assert_eq!(fingerprint_a, fingerprint_b);
        prop_assert_eq!(audit_a, audit_b);
    }
}

// ---------------------------------------------------------------------------
// Satellite: pack replay across a durable crash/recover cycle.
// ---------------------------------------------------------------------------

/// Half the smart-city pack runs on a `DurableServer`; the process "dies"
/// (backend dropped); `BackendBuilder::durable` recovers the store; the taps
/// re-attach to their re-minted handles and the script finishes. Every
/// oracle still holds — including the exact 9 health-window emissions — and
/// the post-recovery audit trail starts with the pre-crash events verbatim
/// (sequences *and* original timestamps).
#[test]
fn durable_pack_survives_crash_and_recovery() {
    let dir = durable_store_dir();
    let pack = packs::smart_city();

    let backend = BackendBuilder::durable(&dir).build();
    let mut run = PackRun::setup(backend.as_ref(), &pack).unwrap();
    let halfway = run.script_len() / 2;
    while run.cursor() < halfway {
        run.step(backend.as_ref()).unwrap();
    }
    run.drain_taps();
    let audit_prefix = backend.audit_events();
    assert!(!audit_prefix.is_empty(), "half the script must have produced audit events");
    drop(backend); // the crash

    let recovered = BackendBuilder::durable(&dir).build();
    run.reattach(recovered.as_ref()).unwrap();
    run.run_script(recovered.as_ref()).unwrap();
    let outcome = run.finish(recovered.as_ref());

    let violations = outcome.check(&pack.expect);
    assert!(violations.is_empty(), "oracles must survive recovery:\n  {}", violations.join("\n  "));
    let final_events = recovered.audit_events();
    assert!(final_events.len() > audit_prefix.len());
    assert_eq!(
        &final_events[..audit_prefix.len()],
        &audit_prefix[..],
        "recovery must preserve the pre-crash audit prefix verbatim"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Nightly: the adversarial pack under a fault-plan crash window.
// ---------------------------------------------------------------------------

/// The adversarial pack on a replicated fabric while a `FaultPlan` kills a
/// host mid-script: every attack stays blocked and audited, and the
/// delivery/decision oracles still hold through the failover. `#[ignore]`d
/// on PRs; the nightly soak runs it with `-- --ignored`.
#[test]
#[ignore = "nightly soak: adversarial pack under a crash window"]
fn adversarial_pack_survives_fault_plan_crash() {
    let root = durable_store_dir();
    let plan = Arc::new(FaultPlan::new().inject(
        Fault::Crash { node: NodeId::Server(2) },
        Duration::from_millis(40),
        Duration::from_millis(100),
    ));
    let fabric = ReplicatedFabric::create(
        ReplicatedConfig::new(3, &root).with_replication(1).with_seed(7).with_fault_plan(plan),
    )
    .unwrap();
    let pack = packs::adversarial();

    let mut run = PackRun::setup(&fabric, &pack).unwrap();
    let halfway = run.script_len() / 2;
    while run.cursor() < halfway {
        run.step(&fabric).unwrap();
    }
    run.drain_taps();
    // Ship the pre-crash journal to the mirrors — the guard's refusal events
    // and the attacker's window state must be durable *before* the host
    // dies, or the crash (legitimately) takes the unshipped tail with it.
    fabric.settle_replication();
    // Cross the crash instant; the next touches fail the dead host's nodes
    // over to survivors, and the taps re-attach at their recorded URIs.
    fabric.advance(Duration::from_millis(50));
    run.reattach(&fabric).unwrap();
    run.run_script(&fabric).unwrap();
    let outcome = run.finish(&fabric);

    let violations = outcome.check(&pack.expect);
    assert!(
        violations.is_empty(),
        "adversarial oracles must hold through the crash window:\n  {}",
        violations.join("\n  ")
    );
    assert!(!fabric.host_is_alive(2), "the crash window must have fired");
    let _ = std::fs::remove_dir_all(&root);
}
