//! Backend conformance suite.
//!
//! Every test body here is written **once** against `&dyn Backend` and
//! executed for every deployment shape — a single in-process `DataServer`,
//! a 3-node brokering `Fabric`, a disk-backed `DurableServer`, and a 3-node
//! `ReplicatedFabric` of durable stores with WAL shipping — pinning the
//! promise of the unified backend API: scenario code cannot tell one node
//! from N, nor memory from disk, nor a fabric that can lose a host from one
//! that cannot. Covered: register/push/subscribe,
//! policy churn (load / update / remove with graph withdrawal), release
//! edge cases (unknown and double releases are no-ops), unified
//! unknown-handle errors, reuse semantics, the single-access guard, and
//! the node-tagged audit trail.

use exacml::exacml_dsms::{Schema, Tuple, Value};
use exacml::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

static STORE_COUNTER: AtomicUsize = AtomicUsize::new(0);

/// A fresh store directory for one durable backend under test.
fn durable_store_dir() -> std::path::PathBuf {
    let n = STORE_COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("exacml-conformance-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The four backend shapes every test runs against.
fn backends() -> Vec<Arc<dyn Backend>> {
    vec![
        BackendBuilder::local().build(),
        BackendBuilder::fabric(3).build(),
        BackendBuilder::durable(durable_store_dir()).build(),
        BackendBuilder::replicated(3, durable_store_dir()).build(),
    ]
}

fn weather_tuple(schema: &Arc<Schema>, i: i64, rain: f64) -> Tuple {
    Tuple::builder_shared(schema)
        .set("samplingtime", Value::Timestamp(i * 30_000))
        .set("rainrate", rain)
        .finish_with_defaults()
}

fn rain_policy(id: &str, stream: &str, subject: &str) -> Policy {
    StreamPolicyBuilder::new(id, stream).subject(subject).filter("rainrate > 5").build()
}

#[test]
fn register_push_subscribe_lifecycle() {
    for backend in backends() {
        let kind = backend.backend_kind();
        // Several streams so a fabric spreads them over more than one node.
        let schema = Schema::weather_example().shared();
        for i in 0..6 {
            let name = format!("stream{i}");
            backend.register_stream(&name, Schema::weather_example()).unwrap();
            backend.load_policy(rain_policy(&format!("p{i}"), &name, "LTA")).unwrap();
        }
        // Duplicate registration fails identically on both shapes.
        assert!(backend.register_stream("stream0", Schema::weather_example()).is_err(), "{kind}");
        // Unknown streams reject ingest.
        assert!(backend.push("nosuch", weather_tuple(&schema, 0, 9.0)).is_err(), "{kind}");

        for i in 0..6 {
            let name = format!("stream{i}");
            let granted = backend
                .handle_request(&Request::subscribe("LTA", &name), None)
                .unwrap_or_else(|e| panic!("{kind}: grant on {name}: {e}"));
            assert!(backend.handle_is_live(granted.handle()), "{kind}");
            let mut subscription = backend.subscribe(granted.handle()).unwrap();

            // Batch + single push; only heavy rain passes the policy filter.
            let batch: Vec<Tuple> = (0..20).map(|k| weather_tuple(&schema, k, 10.0)).collect();
            assert_eq!(backend.push_batch(&name, batch).unwrap(), 20, "{kind}");
            assert_eq!(backend.push(&name, weather_tuple(&schema, 20, 1.0)).unwrap(), 0, "{kind}");
            let derived = subscription.drain();
            assert_eq!(derived.len(), 20, "{kind}: {name} lost or duplicated tuples");
            // Delivery preserves send order on both shapes.
            for pair in derived.windows(2) {
                assert!(pair[1].event_time().unwrap() > pair[0].event_time().unwrap(), "{kind}");
            }
        }
        assert_eq!(backend.live_deployments(), 6, "{kind}");
    }
}

/// The batched fan-out entry point and the settled drain are part of the
/// uniform surface: one `push_batches` call spanning several streams lands
/// on every shape, and `Subscription::drain_settled` reports delivery
/// records with consistent ordering invariants whether the tuples crossed
/// a simulated link (fabric) or an in-process channel (single server).
#[test]
fn batched_fan_out_and_settled_drain_are_uniform() {
    for backend in backends() {
        let kind = backend.backend_kind();
        let schema = Schema::weather_example().shared();
        let mut subscriptions = Vec::new();
        for i in 0..4 {
            let name = format!("stream{i}");
            backend.register_stream(&name, Schema::weather_example()).unwrap();
            backend.load_policy(rain_policy(&format!("p{i}"), &name, "LTA")).unwrap();
            let granted = backend.handle_request(&Request::subscribe("LTA", &name), None).unwrap();
            subscriptions.push(backend.subscribe(granted.handle()).unwrap());
        }

        // One trait-level call fans out to every stream (and, on the fabric
        // shapes, every owner node in one frame per node); empty batches
        // are dropped silently.
        let batches: Vec<StreamBatch> = (0..4)
            .map(|i| {
                StreamBatch::new(
                    format!("stream{i}"),
                    (0..10).map(|k| weather_tuple(&schema, k, 10.0)).collect(),
                )
            })
            .chain(std::iter::once(StreamBatch::new("stream0", Vec::new())))
            .collect();
        assert_eq!(backend.push_batches(batches).unwrap(), 40, "{kind}");

        for subscription in &mut subscriptions {
            let received = subscription.drain_settled();
            assert_eq!(received.len(), 10, "{kind}: lost or duplicated tuples");
            // Arrival order is non-decreasing, and arrived ≥ sent always —
            // in-process delivery settles at zero latency, fabric delivery
            // after its simulated link.
            for pair in received.windows(2) {
                assert!(pair[1].arrived_at_nanos >= pair[0].arrived_at_nanos, "{kind}");
            }
            for d in &received {
                assert!(d.arrived_at_nanos >= d.sent_at_nanos, "{kind}");
            }
        }

        // An unknown stream fails the call identically on every shape.
        let bad = vec![StreamBatch::new("nosuch", vec![weather_tuple(&schema, 0, 9.0)])];
        assert!(backend.push_batches(bad).is_err(), "{kind}");
    }
}

#[test]
fn policy_churn_withdraws_graphs_and_serves_fresh_obligations() {
    for backend in backends() {
        let kind = backend.backend_kind();
        backend.register_stream("weather", Schema::weather_example()).unwrap();
        backend.load_policy(rain_policy("p", "weather", "LTA")).unwrap();
        assert_eq!(backend.policy_count(), 1, "{kind}");

        // Update withdraws the graphs the old version spawned, and a fresh
        // grant carries the new obligation set.
        let granted = backend.handle_request(&Request::subscribe("LTA", "weather"), None).unwrap();
        let updated =
            StreamPolicyBuilder::new("p", "weather").subject("LTA").filter("rainrate > 50").build();
        assert_eq!(backend.update_policy(updated).unwrap(), 1, "{kind}");
        assert!(!backend.handle_is_live(granted.handle()), "{kind}");
        let fresh = backend.handle_request(&Request::subscribe("LTA", "weather"), None).unwrap();
        assert!(fresh.response.streamsql.contains("rainrate > 50"), "{kind}");

        // Removal withdraws and then denies.
        assert_eq!(backend.remove_policy("p").unwrap(), 1, "{kind}");
        assert_eq!(backend.policy_count(), 0, "{kind}");
        assert_eq!(backend.live_deployments(), 0, "{kind}");
        assert!(matches!(
            backend.handle_request(&Request::subscribe("LTA", "weather"), None),
            Err(ExacmlError::AccessDenied { .. })
        ));
        // Removing an unknown policy fails on both shapes.
        assert!(backend.remove_policy("p").is_err(), "{kind}");
    }
}

#[test]
fn release_edge_cases_are_noops_on_every_shape() {
    for backend in backends() {
        let kind = backend.backend_kind();
        backend.register_stream("weather", Schema::weather_example()).unwrap();
        backend.load_policy(rain_policy("p", "weather", "LTA")).unwrap();
        let granted = backend.handle_request(&Request::subscribe("LTA", "weather"), None).unwrap();

        // Unknown subject, unknown stream, unknown both: no-ops.
        assert!(!backend.release_access("EMA", "weather"), "{kind}");
        assert!(!backend.release_access("LTA", "nosuch"), "{kind}");
        assert!(!backend.release_access("nobody", "nothing"), "{kind}");
        assert!(backend.handle_is_live(granted.handle()), "{kind}");

        // Real release withdraws; the double release (and the
        // case-insensitive variant) are no-ops.
        assert!(backend.release_access("LTA", "weather"), "{kind}");
        assert!(!backend.release_access("LTA", "weather"), "{kind}");
        assert!(!backend.release_access("lta", "WEATHER"), "{kind}");
        assert!(!backend.handle_is_live(granted.handle()), "{kind}");
        assert_eq!(backend.live_deployments(), 0, "{kind}");

        // Release after the policy withdrawal already freed everything.
        let granted = backend.handle_request(&Request::subscribe("LTA", "weather"), None).unwrap();
        backend.remove_policy("p").unwrap();
        assert!(!backend.release_access("LTA", "weather"), "{kind}");
        assert!(!backend.handle_is_live(granted.handle()), "{kind}");
    }
}

#[test]
fn unknown_handles_report_the_unified_error() {
    use exacml::exacml_dsms::StreamHandle;
    for backend in backends() {
        let kind = backend.backend_kind();
        backend.register_stream("weather", Schema::weather_example()).unwrap();
        backend.load_policy(rain_policy("p", "weather", "LTA")).unwrap();

        // Never-granted handles: not live, and subscribe reports the same
        // unified variant on both shapes.
        let foreign = StreamHandle::mint("elsewhere", 99);
        assert!(!backend.handle_is_live(&foreign), "{kind}");
        assert!(
            matches!(backend.subscribe(&foreign), Err(ExacmlError::UnknownHandle(_))),
            "{kind}"
        );

        // A released handle degrades to exactly the same error.
        let granted = backend.handle_request(&Request::subscribe("LTA", "weather"), None).unwrap();
        assert!(backend.subscribe(granted.handle()).is_ok(), "{kind}");
        backend.release_access("LTA", "weather");
        assert!(
            matches!(backend.subscribe(granted.handle()), Err(ExacmlError::UnknownHandle(_))),
            "{kind}"
        );

        // Requests missing mandatory attributes are rejected identically.
        assert!(matches!(
            backend.handle_request(&Request::new(), None),
            Err(ExacmlError::IncompleteRequest(_))
        ));
    }
}

#[test]
fn reuse_and_single_access_guard_semantics() {
    for backend in backends() {
        let kind = backend.backend_kind();
        backend.register_stream("weather", Schema::weather_example()).unwrap();
        backend.load_policy(rain_policy("p", "weather", "LTA")).unwrap();

        // Identical re-request reuses the live handle.
        let first = backend.handle_request(&Request::subscribe("LTA", "weather"), None).unwrap();
        let second = backend.handle_request(&Request::subscribe("LTA", "weather"), None).unwrap();
        assert!(second.response.reused, "{kind}");
        assert_eq!(first.handle(), second.handle(), "{kind}");
        assert_eq!(backend.live_deployments(), 1, "{kind}");

        // A *different* query on the same stream is blocked (Example 2).
        let query = UserQuery::for_stream("weather").with_filter("rainrate > 70");
        assert!(
            matches!(
                backend.handle_request(&Request::subscribe("LTA", "weather"), Some(&query)),
                Err(ExacmlError::MultipleAccess { .. })
            ),
            "{kind}"
        );
        // Releasing unblocks it.
        assert!(backend.release_access("LTA", "weather"), "{kind}");
        assert!(
            backend.handle_request(&Request::subscribe("LTA", "weather"), Some(&query)).is_ok(),
            "{kind}"
        );
    }
}

#[test]
fn audit_trail_is_node_tagged_on_every_shape() {
    for backend in backends() {
        let kind = backend.backend_kind();
        let fabric_nodes = if kind.starts_with("fabric") { 3 } else { 1 };
        backend.register_stream("weather", Schema::weather_example()).unwrap();
        backend.load_policy(rain_policy("p", "weather", "LTA")).unwrap();

        backend.handle_request(&Request::subscribe("LTA", "weather"), None).unwrap();
        let _ = backend.handle_request(&Request::subscribe("EMA", "weather"), None);
        backend.release_access("LTA", "weather");
        backend.remove_policy("p").unwrap();

        let events = backend.audit_events();
        let kinds: Vec<exacml::exacml_plus::AuditEventKind> =
            events.iter().map(|t| t.event.kind).collect();
        use exacml::exacml_plus::AuditEventKind as K;
        for expected in
            [K::PolicyLoaded, K::Granted, K::Denied, K::AccessReleased, K::PolicyRemoved]
        {
            assert!(kinds.contains(&expected), "{kind}: missing {expected} in {kinds:?}");
        }
        // Policy life-cycle events happen once per node (fabric-wide
        // propagation), request events exactly once fabric-wide.
        assert_eq!(kinds.iter().filter(|k| **k == K::PolicyLoaded).count(), fabric_nodes, "{kind}");
        assert_eq!(kinds.iter().filter(|k| **k == K::Granted).count(), 1, "{kind}");
        // Every event is tagged with a node of the right shape.
        for tagged in &events {
            match tagged.node {
                NodeId::DataServer => {
                    assert!(kind == "data-server" || kind == "durable-server", "{kind}");
                }
                NodeId::Server(i) => {
                    assert!(kind.starts_with("fabric"), "{kind}");
                    assert!((i as usize) < fabric_nodes, "{kind}");
                }
                other => panic!("{kind}: audit event tagged with {other:?}"),
            }
        }

        // Per-subject filtering matches on both shapes.
        let lta = backend.audit_events_for_subject("LTA");
        assert!(!lta.is_empty(), "{kind}");
        assert!(lta.iter().all(|t| t.event.subject.as_deref() == Some("LTA")), "{kind}");
    }
}

#[test]
fn overlapping_subscribers_share_one_plan_on_every_shape() {
    for backend in backends() {
        let kind = backend.backend_kind();
        let schema = Schema::weather_example().shared();
        backend.register_stream("weather", Schema::weather_example()).unwrap();
        backend
            .load_policy(StreamPolicyBuilder::new("open", "weather").filter("rainrate > 5").build())
            .unwrap();

        // N overlapping subscribers ride exactly one compiled plan.
        let mut sessions = Vec::new();
        let mut subscriptions = Vec::new();
        let mut plans = std::collections::HashSet::new();
        for i in 0..8 {
            let session = Session::new(backend.clone(), format!("user{i}"));
            let subscription = session.subscribe(Query::on("weather")).unwrap();
            plans.insert(subscription.plan());
            sessions.push(session);
            subscriptions.push(subscription);
        }
        assert_eq!(plans.len(), 1, "{kind}");
        assert_eq!(backend.live_plans(), 1, "{kind}");
        assert_eq!(backend.live_deployments(), 1, "{kind}");

        // Every subscriber sees the shared plan's full output.
        backend
            .push_batch("weather", (0..5).map(|k| weather_tuple(&schema, k, 9.0)).collect())
            .unwrap();
        for subscription in &mut subscriptions {
            assert_eq!(subscription.drain().len(), 5, "{kind}");
        }

        // Sessions release refcounts on drop; the plan is withdrawn only
        // when the *last* sharer leaves.
        subscriptions.clear();
        let last = sessions.pop().unwrap();
        sessions.clear();
        assert_eq!(backend.live_plans(), 1, "{kind}: one sharer still holds the plan");
        drop(last);
        assert_eq!(backend.live_plans(), 0, "{kind}");
        assert_eq!(backend.live_deployments(), 0, "{kind}");

        // A policy update invalidates the shared plan and re-merges fresh
        // grants onto a new one.
        let session = Session::new(backend.clone(), "user0");
        let before = session.subscribe(Query::on("weather")).unwrap();
        let updated = StreamPolicyBuilder::new("open", "weather").filter("rainrate > 50").build();
        assert_eq!(backend.update_policy(updated).unwrap(), 1, "{kind}");
        assert_eq!(backend.live_plans(), 0, "{kind}: the update withdrew the shared plan");
        assert!(!backend.handle_is_live(before.handle()), "{kind}");
        let after = session.subscribe(Query::on("weather")).unwrap();
        assert_ne!(after.plan(), before.plan(), "{kind}: re-merge compiled a fresh plan");
        assert_eq!(backend.live_plans(), 1, "{kind}");
    }
}

#[test]
fn policy_xml_round_trips_through_the_trait() {
    for backend in backends() {
        let kind = backend.backend_kind();
        backend.register_stream("weather", Schema::weather_example()).unwrap();
        let xml = exacml::exacml_xacml::xml::write_policy(&rain_policy("p", "weather", "LTA"));
        let elapsed = backend.load_policy_xml(&xml).unwrap();
        assert!(elapsed > std::time::Duration::ZERO, "{kind}");
        assert_eq!(backend.policy_count(), 1, "{kind}");
        let granted = backend.handle_request(&Request::subscribe("LTA", "weather"), None).unwrap();
        assert!(granted.response.streamsql.contains("rainrate > 5"), "{kind}");
        // Malformed documents are rejected identically.
        assert!(backend.load_policy_xml("<garbage").is_err(), "{kind}");
    }
}

/// Every shape answers a populated `telemetry()` snapshot whose counters
/// reconcile with the operations just performed; multi-node shapes answer
/// node-tagged sub-snapshots whose counters sum to the aggregate.
#[test]
fn telemetry_snapshots_reconcile_on_every_shape() {
    for backend in backends() {
        let kind = backend.backend_kind();
        let schema = Schema::weather_example().shared();
        backend.register_stream("weather", Schema::weather_example()).unwrap();
        backend.load_policy(rain_policy("p", "weather", "LTA")).unwrap();
        backend.handle_request(&Request::subscribe("LTA", "weather"), None).unwrap();
        // A denied request records into the same registry.
        assert!(backend.handle_request(&Request::subscribe("EMA", "weather"), None).is_err());
        let batch: Vec<Tuple> = (0..20).map(|k| weather_tuple(&schema, k, 10.0)).collect();
        assert_eq!(backend.push_batch("weather", batch).unwrap(), 20, "{kind}");

        let snapshot = backend.telemetry();
        assert_eq!(snapshot.node, kind, "{kind}: snapshot carries the backend kind");
        assert!(!snapshot.is_empty(), "{kind}");
        assert_eq!(snapshot.counter(Metric::Requests), 2, "{kind}");
        assert_eq!(snapshot.counter(Metric::RequestsGranted), 1, "{kind}");
        assert_eq!(snapshot.counter(Metric::RequestsDenied), 1, "{kind}");
        assert_eq!(snapshot.counter(Metric::TuplesIngested), 20, "{kind}");
        assert!(snapshot.counter(Metric::BatchesIngested) >= 1, "{kind}");
        assert_eq!(snapshot.stage(Stage::Pdp).map(|s| s.count), Some(2), "{kind}");
        assert!(snapshot.stage(Stage::Ingest).is_some(), "{kind}");

        if kind.starts_with("fabric") {
            assert!(!snapshot.nodes.is_empty(), "{kind}: fabric snapshots are node-tagged");
            let node_ingest: u64 =
                snapshot.nodes.iter().map(|part| part.counter(Metric::TuplesIngested)).sum();
            assert_eq!(node_ingest, 20, "{kind}: sub-snapshots reconcile with the aggregate");
            assert!(snapshot.counter(Metric::BrokerFrames) > 0, "{kind}");
        } else {
            assert!(snapshot.nodes.is_empty(), "{kind}: single-node snapshots are flat");
        }
        if kind == "durable-server" || kind == "fabric-replicated" {
            assert!(snapshot.counter(Metric::WalRecords) > 0, "{kind}: WAL appends recorded");
            assert!(snapshot.counter(Metric::WalFlushes) > 0, "{kind}: WAL flushes recorded");
            assert!(snapshot.stage(Stage::WalAppend).is_some(), "{kind}");
        }
        if kind == "fabric-replicated" {
            assert!(
                snapshot.counter(Metric::ReplicaBatchesShipped) > 0,
                "{kind}: journal shipping recorded"
            );
        }
    }
}
