//! Chaos suite: kill nodes of a replicated fabric mid-churn and assert the
//! paper's accountability promises survive the loss.
//!
//! The scenario mirrors the conformance suite's world — several streams,
//! open and subject-scoped policies, grants, releases, ingest — running on
//! a [`ReplicatedFabric`] while a physical host dies. The invariants:
//!
//! * **zero grant loss** — every handle acknowledged before the kill is
//!   still live afterwards, at its exact recorded URI, served by a
//!   surviving peer that replayed the shipped journal;
//! * **releases stay released** — failover must not resurrect a grant the
//!   subject already gave up;
//! * **the audit trail keeps its node tags** — events recorded by the dead
//!   node reappear under the same logical node id;
//! * **the control plane keeps working** — policy loads, fresh grants and
//!   ingest during and after the failover succeed (transient fault windows
//!   degrade to retries, not errors).
//!
//! The workload size is overridable so the nightly soak can run the same
//! invariants at a much larger scale: `CHAOS_STREAMS`, `CHAOS_BATCHES`,
//! `CHAOS_BATCH_SIZE`, `CHAOS_CHURN_ROUNDS`. When `TELEMETRY_SNAPSHOT_OUT`
//! names a path, the headline scenario also dumps the fabric's final
//! telemetry snapshot there as JSON so the nightly workflow can upload it
//! as a build artifact.

use exacml::exacml_durable::{ReplicatedConfig, ReplicatedFabric};
use exacml::prelude::*;
use exacml_dsms::{Schema, StreamHandle, Tuple, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

static STORE_COUNTER: AtomicUsize = AtomicUsize::new(0);

fn knob(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Soak artifact: when `TELEMETRY_SNAPSHOT_OUT` names a path, write the
/// suite's final telemetry snapshot there as JSON (see
/// `docs/OBSERVABILITY.md`); a no-op otherwise.
fn dump_telemetry_snapshot(snapshot: &TelemetrySnapshot) {
    let Ok(path) = std::env::var("TELEMETRY_SNAPSHOT_OUT") else { return };
    let json = serde_json::to_string_pretty(snapshot).expect("snapshot serializes");
    std::fs::write(&path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("telemetry snapshot written to {path}");
}

fn fresh_root(tag: &str) -> PathBuf {
    let n = STORE_COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("exacml-chaos-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn weather_tuple(schema: &Arc<Schema>, i: i64, rain: f64) -> Tuple {
    Tuple::builder_shared(schema)
        .set("samplingtime", Value::Timestamp(i * 30_000))
        .set("rainrate", rain)
        .finish_with_defaults()
}

/// The headline chaos scenario from the issue: a 3-node replicated fabric
/// under ingest + policy churn, one host killed mid-churn, zero grants
/// lost.
#[test]
fn killing_a_host_mid_churn_loses_no_grants() {
    let streams = knob("CHAOS_STREAMS", 6);
    let batches = knob("CHAOS_BATCHES", 4);
    let batch_size = knob("CHAOS_BATCH_SIZE", 8);
    let churn_rounds = knob("CHAOS_CHURN_ROUNDS", 3);

    let root = fresh_root("kill");
    let fabric = Arc::new(
        ReplicatedFabric::create(ReplicatedConfig::new(3, &root).with_replication(1).with_seed(7))
            .unwrap(),
    );
    let schema = Schema::weather_example().shared();

    // World: `streams` open-policy streams, one grant each, plus one grant
    // that is released before the kill (it must stay released after it).
    for i in 0..streams {
        fabric.register_stream(&format!("s{i}"), Schema::weather_example()).unwrap();
        fabric
            .load_policy(
                StreamPolicyBuilder::new(format!("p{i}"), format!("s{i}"))
                    .filter("rainrate > 5")
                    .build(),
            )
            .unwrap();
    }
    let mut held: BTreeMap<String, String> = BTreeMap::new();
    for i in 0..streams {
        let granted = fabric
            .handle_request(&Request::subscribe(&format!("u{i}"), &format!("s{i}")), None)
            .unwrap();
        held.insert(format!("s{i}"), granted.handle().uri().to_string());
    }
    let released_uri = held.remove("s0").unwrap();
    assert!(fabric.release_access("u0", "s0"));

    // Who owns what, before anything dies.
    let owner_of: BTreeMap<String, u16> = (0..streams)
        .map(|i| {
            let stream = format!("s{i}");
            let NodeId::Server(owner) = fabric.owner_of(&stream) else { unreachable!() };
            (stream, owner)
        })
        .collect();
    // The victim: the host currently backing s1's owner (s1 is never
    // released, so the victim holds at least one live grant).
    let victim = fabric.host_of(owner_of["s1"] as usize);
    let victim_grants = (0..streams)
        .filter(|i| fabric.host_of(owner_of[&format!("s{i}")] as usize) == victim)
        .count();
    let audit_before: BTreeSet<(NodeId, u64, String)> = fabric
        .audit_events()
        .iter()
        .map(|t| (t.node, t.event.sequence, t.event.kind.to_string()))
        .collect();

    // Churn: ingest into every stream, kill the victim halfway through.
    let kill_at = batches / 2;
    for round in 0..batches {
        if round == kill_at {
            fabric.kill_node(victim);
        }
        for i in 0..streams {
            let batch: Vec<Tuple> = (0..batch_size)
                .map(|k| weather_tuple(&schema, (round * batch_size + k) as i64, 10.0))
                .collect();
            fabric.push_batch(&format!("s{i}"), batch).unwrap();
        }
    }
    // Policy churn keeps running through the failover too.
    for round in 0..churn_rounds {
        fabric
            .load_policy(
                StreamPolicyBuilder::new(format!("churn{round}"), "s1")
                    .subject(format!("c{round}"))
                    .filter("rainrate > 50")
                    .build(),
            )
            .unwrap();
        fabric.remove_policy(&format!("churn{round}")).unwrap();
    }

    // Zero grant loss: every held handle is live at its recorded URI, and
    // each failed-over owner now lives on a surviving host.
    for (stream, uri) in &held {
        assert!(
            fabric.handle_is_live(&StreamHandle::from_uri(uri.clone())),
            "{stream}'s grant must survive the kill at its recorded URI"
        );
        assert_ne!(fabric.host_of(owner_of[stream] as usize), victim);
    }
    // The released grant stays released — failover must not resurrect it.
    assert!(!fabric.handle_is_live(&StreamHandle::from_uri(released_uri)));

    // The trail survived with its node tags: every pre-kill event is still
    // present, attributed to the same logical node.
    let audit_after: BTreeSet<(NodeId, u64, String)> = fabric
        .audit_events()
        .iter()
        .map(|t| (t.node, t.event.sequence, t.event.kind.to_string()))
        .collect();
    assert!(
        audit_before.is_subset(&audit_after),
        "pre-kill audit events must survive failover with their node tags"
    );

    // The counters account for what happened.
    let stats = fabric.robustness();
    assert!(stats.failovers_completed >= 1, "at least the victim's nodes failed over");
    assert!(
        stats.handles_reminted as usize >= victim_grants,
        "every grant owned by the victim was re-minted ({} < {victim_grants})",
        stats.handles_reminted
    );
    assert!(stats.replication_batches_acked > 0);

    // The fabric still enforces: a second query on a held stream is
    // refused, a fresh grant works, release works — the conformance
    // contract holds post-failover.
    let query = UserQuery::for_stream("s1").with_filter("rainrate > 70");
    assert!(matches!(
        fabric.handle_request(&Request::subscribe("u1", "s1"), Some(&query)),
        Err(ExacmlError::MultipleAccess { .. })
    ));
    let fresh = fabric.handle_request(&Request::subscribe("v", "s1"), None).unwrap();
    assert!(fabric.handle_is_live(fresh.handle()));
    assert!(fabric.release_access("u1", "s1"));

    // The telemetry aggregate keeps answering across the kill. Registries
    // are in-memory observability, not WAL-backed state: the victim's
    // pre-kill counts die with its host, so the aggregate covers everything
    // since the failover but never overcounts the true total.
    let snapshot = fabric.telemetry();
    let total_pushed = (streams * batches * batch_size) as u64;
    let post_kill = (streams * (batches - kill_at) * batch_size) as u64;
    let ingested = snapshot.counter(Metric::TuplesIngested);
    assert!(
        (post_kill..=total_pushed).contains(&ingested),
        "aggregate ingest count {ingested} outside [{post_kill}, {total_pushed}]"
    );
    assert!(snapshot.counter(Metric::WalRecords) > 0);
    assert!(snapshot.counter(Metric::ReplicaBatchesShipped) > 0);
    dump_telemetry_snapshot(&snapshot);
    let _ = std::fs::remove_dir_all(&root);
}

/// Delivery keeps flowing to a subscription whose owning host died: the
/// consumer re-subscribes to the *same URI* on the failed-over node and
/// sees post-failover tuples.
#[test]
fn subscription_to_a_failed_over_handle_keeps_delivering() {
    let root = fresh_root("deliver");
    let fabric =
        ReplicatedFabric::create(ReplicatedConfig::new(3, &root).with_replication(2).with_seed(3))
            .unwrap();
    let schema = Schema::weather_example().shared();
    fabric.register_stream("weather", Schema::weather_example()).unwrap();
    fabric
        .load_policy(StreamPolicyBuilder::new("p", "weather").filter("rainrate > 5").build())
        .unwrap();
    let granted = fabric.handle_request(&Request::subscribe("LTA", "weather"), None).unwrap();
    let held = StreamHandle::from_uri(granted.handle().uri().to_string());

    let NodeId::Server(owner) = fabric.owner_of("weather") else { unreachable!() };
    fabric.kill_node(fabric.host_of(owner as usize));

    // The old subscription's node is gone; attaching to the held URI again
    // reaches the adopted deployment.
    let mut subscription = fabric.subscribe(&held).unwrap();
    fabric
        .push_batch("weather", (0..5).map(|i| weather_tuple(&schema, i, 10.0)).collect())
        .unwrap();
    let received = subscription.drain_settled();
    assert_eq!(received.len(), 5, "post-failover ingest must reach the re-attached consumer");
    let _ = std::fs::remove_dir_all(&root);
}

/// Fault-plan-driven chaos: a `Crash` window kills a host at a virtual
/// instant, `LatencySpike` and `LinkDrop` windows on the broker hops
/// degrade to retries (counted, not surfaced as errors), and the fabric
/// heals once the windows pass.
#[test]
fn crash_and_fault_windows_from_a_plan_degrade_to_retries() {
    let root = fresh_root("plan");
    let plan = Arc::new(
        FaultPlan::new()
            // The broker→node0 link flaps early; retries ride it out.
            .inject(
                Fault::LinkDrop { a: NodeId::DataServer, b: NodeId::Server(0) },
                Duration::from_millis(0),
                Duration::from_millis(4),
            )
            .inject(
                Fault::LatencySpike { a: NodeId::DataServer, b: NodeId::Server(1), factor: 8.0 },
                Duration::from_millis(0),
                Duration::from_millis(60),
            )
            // Host 2 loses power at t = 40ms of virtual time; the window
            // closing at 100ms is when an operator may bring it back.
            .inject(
                Fault::Crash { node: NodeId::Server(2) },
                Duration::from_millis(40),
                Duration::from_millis(100),
            ),
    );
    let fabric = ReplicatedFabric::create(
        ReplicatedConfig::new(3, &root).with_replication(1).with_seed(5).with_fault_plan(plan),
    )
    .unwrap();
    let schema = Schema::weather_example().shared();

    // Control-plane traffic during the link-flap window succeeds (the
    // retry budget outlasts the window) and is visible in the counters.
    fabric.register_stream("weather", Schema::weather_example()).unwrap();
    fabric
        .load_policy(StreamPolicyBuilder::new("p", "weather").filter("rainrate > 5").build())
        .unwrap();
    let granted = fabric.handle_request(&Request::subscribe("LTA", "weather"), None).unwrap();
    assert!(fabric.robustness().broker_retries > 0, "the fault windows must have cost retries");

    // Cross the crash instant: host 2 dies mid-churn, the next touch of its
    // nodes fails over, the grant survives.
    fabric.advance(Duration::from_millis(50));
    fabric
        .push_batch("weather", (0..6).map(|i| weather_tuple(&schema, i, 10.0)).collect())
        .unwrap();
    assert!(!fabric.host_is_alive(2), "the Crash window must have killed host 2");
    // Touch every node so any that lived on host 2 adopts a survivor.
    for logical in 0..3 {
        fabric.node_server(logical).unwrap();
        assert_ne!(fabric.host_of(logical), 2);
    }
    assert!(fabric.handle_is_live(&StreamHandle::from_uri(granted.handle().uri().to_string())));
    assert!(fabric.robustness().failovers_completed >= 1);

    // Past the crash window, the restarted host rejoins as a mirror target
    // and replication settles back to zero lag.
    fabric.advance(Duration::from_millis(60));
    fabric.restart_node(2);
    fabric.settle_replication();
    assert_eq!(fabric.replication_lag(), 0);
    assert!(fabric.degraded_nodes().is_empty());
    let _ = std::fs::remove_dir_all(&root);
}

/// Batched routing on the replicated fabric: one `push_batches` call spans
/// every stream, ships one WAL-amortised frame per owner node, and stays
/// exactly-once with latency-ordered delivery while fault windows (a
/// broker-link drop riding the retry budget, a latency spike) are active.
#[test]
fn batched_push_is_exactly_once_under_fault_windows() {
    let root = fresh_root("batch");
    let streams = knob("CHAOS_STREAMS", 6);
    let per_stream = knob("CHAOS_BATCH_SIZE", 40);
    let plan = Arc::new(
        FaultPlan::new()
            .inject(
                Fault::LinkDrop { a: NodeId::DataServer, b: NodeId::Server(0) },
                Duration::from_millis(50),
                Duration::from_millis(56),
            )
            .inject(
                Fault::LatencySpike { a: NodeId::DataServer, b: NodeId::Server(1), factor: 6.0 },
                Duration::from_millis(40),
                Duration::from_millis(200),
            ),
    );
    let fabric = ReplicatedFabric::create(
        ReplicatedConfig::new(3, &root).with_replication(1).with_seed(11).with_fault_plan(plan),
    )
    .unwrap();
    let schema = Schema::weather_example().shared();
    let mut subscriptions = Vec::new();
    for i in 0..streams {
        let name = format!("s{i}");
        fabric.register_stream(&name, Schema::weather_example()).unwrap();
        fabric
            .load_policy(
                StreamPolicyBuilder::new(format!("p{i}"), &name).filter("rainrate > 5").build(),
            )
            .unwrap();
        let granted =
            fabric.handle_request(&Request::subscribe(&format!("u{i}"), &name), None).unwrap();
        subscriptions.push((i, fabric.subscribe(granted.handle()).unwrap()));
    }

    // Land the multi-stream fan-out inside both fault windows: the drop
    // degrades to virtual-time retries, never an error or a partial apply.
    fabric.advance(Duration::from_millis(51));
    let batches: Vec<StreamBatch> = (0..streams)
        .map(|i| {
            StreamBatch::new(
                format!("s{i}"),
                (0..per_stream)
                    .map(|k| weather_tuple(&schema, (i * 1000 + k) as i64, 10.0))
                    .collect(),
            )
        })
        .collect();
    assert_eq!(fabric.push_batches(batches).unwrap(), streams * per_stream);
    assert!(fabric.robustness().broker_retries > 0, "the drop window must degrade to retries");

    for (i, subscription) in &mut subscriptions {
        let received = subscription.drain_settled();
        // Exactly once, in send order, each tuple paying its simulated hop.
        assert_eq!(received.len(), per_stream, "stream s{i} lost or duplicated tuples");
        for pair in received.windows(2) {
            assert!(pair[1].arrived_at_nanos >= pair[0].arrived_at_nanos);
            assert!(pair[1].tuple.event_time() > pair[0].tuple.event_time());
        }
        for d in &received {
            assert!(d.arrived_at_nanos > d.sent_at_nanos, "delivery must cross the simulated link");
        }
    }

    // WAL shipping amortises per frame, not per tuple; the mirrors settle
    // back to zero lag once replication catches up.
    fabric.settle_replication();
    assert_eq!(fabric.replication_lag(), 0);
    let _ = std::fs::remove_dir_all(&root);
}

/// Losing every replica is an error, not a panic — and it is *typed*, so a
/// broker can distinguish "node gone" from a policy decision.
#[test]
fn losing_every_host_of_a_node_is_a_typed_error() {
    let root = fresh_root("total");
    let fabric =
        ReplicatedFabric::create(ReplicatedConfig::new(2, &root).with_replication(1).with_seed(9))
            .unwrap();
    fabric.register_stream("weather", Schema::weather_example()).unwrap();
    let NodeId::Server(owner) = fabric.owner_of("weather") else { unreachable!() };
    fabric.kill_node(0);
    fabric.kill_node(1);
    let err = fabric.node_server(owner as usize).err().expect("must fail");
    assert!(matches!(err, ExacmlError::NodeUnavailable { .. }), "got {err:?}");
    let _ = std::fs::remove_dir_all(&root);
}
