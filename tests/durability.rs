//! Durability integration suite: kill/recover through the prelude, recovery
//! edge cases (torn WAL tails, double recovery), and the replay-equivalence
//! property — a journaled operation sequence recovers to exactly the state
//! an in-memory server reaches by executing the same sequence, with or
//! without snapshot compaction in between.

use exacml::exacml_dsms::{Schema, StreamHandle, Tuple, Value};
use exacml::exacml_durable::DurableServer;
use exacml::prelude::*;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

static STORE_COUNTER: AtomicUsize = AtomicUsize::new(0);

fn fresh_store(tag: &str) -> PathBuf {
    let n = STORE_COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("exacml-durability-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn weather_tuple(schema: &Arc<Schema>, i: i64, rain: f64) -> Tuple {
    Tuple::builder_shared(schema)
        .set("samplingtime", Value::Timestamp(i * 30_000))
        .set("rainrate", rain)
        .finish_with_defaults()
}

fn rain_policy(id: &str, stream: &str, subject: &str, threshold: f64) -> Policy {
    StreamPolicyBuilder::new(id, stream)
        .subject(subject)
        .filter(format!("rainrate > {threshold}"))
        .build()
}

/// The headline promise: kill the process mid-stream, recover from disk,
/// and the consumer's world — policies, the granted handle (same URI), the
/// guard state, the audit trail — is intact.
#[test]
fn kill_and_recover_preserves_policies_handles_and_audit() {
    let store = fresh_store("kill");
    let schema = Schema::weather_example().shared();

    let (handle_uri, audit_before) = {
        let backend = BackendBuilder::durable(&store).build();
        backend.register_stream("weather", Schema::weather_example()).unwrap();
        backend.load_policy(rain_policy("p", "weather", "LTA", 5.0)).unwrap();
        let granted = backend.handle_request(&Request::subscribe("LTA", "weather"), None).unwrap();
        let mut subscription = backend.subscribe(granted.handle()).unwrap();
        let batch: Vec<Tuple> = (0..10).map(|i| weather_tuple(&schema, i, 10.0)).collect();
        backend.push_batch("weather", batch).unwrap();
        assert_eq!(subscription.drain().len(), 10);
        // A denied request is part of the accountable trail too.
        let _ = backend.handle_request(&Request::subscribe("EMA", "weather"), None);
        (granted.handle().uri().to_string(), backend.audit_events())
        // ← the server is dropped mid-stream with no shutdown protocol.
    };

    let recovered = BackendBuilder::durable(&store).build();
    assert_eq!(recovered.backend_kind(), "durable-server");
    assert_eq!(recovered.policy_count(), 1);
    assert_eq!(recovered.live_deployments(), 1);

    // The handle the consumer still holds from before the crash is live and
    // subscribable — the recovery re-minted the same URI.
    let held = StreamHandle::from_uri(handle_uri);
    assert!(recovered.handle_is_live(&held));
    let mut subscription = recovered.subscribe(&held).unwrap();
    recovered
        .push_batch("weather", (0..6).map(|i| weather_tuple(&schema, i, 9.0)).collect())
        .unwrap();
    assert_eq!(subscription.drain().len(), 6);

    // The audit trail survived verbatim: same events, same timestamps.
    assert_eq!(recovered.audit_events(), audit_before);

    // The single-access guard state survived: a *different* query on the
    // held stream is still blocked, releasing still works.
    let query = UserQuery::for_stream("weather").with_filter("rainrate > 70");
    assert!(matches!(
        recovered.handle_request(&Request::subscribe("LTA", "weather"), Some(&query)),
        Err(ExacmlError::MultipleAccess { .. })
    ));
    assert!(recovered.release_access("LTA", "weather"));
    assert!(!recovered.handle_is_live(&held));
}

/// A crash mid-append tears the final WAL record. Recovery must drop
/// exactly that unacknowledged operation, keep everything before it, and
/// truncate the torn bytes so the store keeps working.
#[test]
fn truncated_final_wal_record_loses_only_the_last_operation() {
    let store = fresh_store("torn");
    {
        let server = DurableServer::create(&store, DurableConfig::local()).unwrap();
        server.register_stream("weather", Schema::weather_example()).unwrap();
        server.load_policy(rain_policy("p", "weather", "LTA", 5.0)).unwrap();
        server.handle_request(&Request::subscribe("LTA", "weather"), None).unwrap();
        let schema = Schema::weather_example().shared();
        server
            .push_batch("weather", (0..20).map(|i| weather_tuple(&schema, i, 10.0)).collect())
            .unwrap();
    }
    // Tear the tail: cut into the final record (the ingest batch).
    let wal = store.join("wal.log");
    let bytes = std::fs::read(&wal).unwrap();
    let cut = bytes.len() - bytes.len().min(40);
    std::fs::write(&wal, &bytes[..cut]).unwrap();

    let recovered = DurableServer::recover(&store).unwrap();
    let report = recovered.recovery_report();
    assert!(report.torn_tail.is_some(), "the torn tail must be detected");
    // Control-plane state before the torn record is fully intact...
    assert_eq!(recovered.policy_count(), 1);
    assert_eq!(recovered.inner().live_deployments(), 1);
    assert_eq!(recovered.live_grants().len(), 1);
    // ...and the unacknowledged ingest batch is gone.
    assert_eq!(recovered.inner().engine_stats().tuples_ingested, 0);

    // The torn bytes were truncated away: the store accepts new appends and
    // a later recovery sees them (nothing is shadowed by garbage).
    let schema = Schema::weather_example().shared();
    recovered
        .push_batch("weather", (0..5).map(|i| weather_tuple(&schema, i, 10.0)).collect())
        .unwrap();
    drop(recovered);
    let again = DurableServer::recover(&store).unwrap();
    assert!(again.recovery_report().torn_tail.is_none());
    assert_eq!(again.inner().engine_stats().tuples_ingested, 5);
}

/// Recovery writes nothing, so recovering twice (or N times) yields the
/// same state every time.
#[test]
fn double_recovery_is_idempotent() {
    let store = fresh_store("double");
    {
        let server = DurableServer::create(&store, DurableConfig::local()).unwrap();
        server.register_stream("weather", Schema::weather_example()).unwrap();
        server.load_policy(rain_policy("p", "weather", "LTA", 5.0)).unwrap();
        server.load_policy(rain_policy("q", "weather", "EMA", 50.0)).unwrap();
        server.handle_request(&Request::subscribe("LTA", "weather"), None).unwrap();
        server.remove_policy("q").unwrap();
    }
    let first = DurableServer::recover(&store).unwrap();
    let first_state = (
        first.policy_count(),
        first.inner().live_deployments(),
        first.live_grants(),
        first.inner().audit_events(),
        first.inner().policy_store().revision(),
    );
    drop(first);
    let second = DurableServer::recover(&store).unwrap();
    assert_eq!(second.policy_count(), first_state.0);
    assert_eq!(second.inner().live_deployments(), first_state.1);
    assert_eq!(second.live_grants(), first_state.2);
    assert_eq!(second.inner().audit_events(), first_state.3);
    assert_eq!(second.inner().policy_store().revision(), first_state.4);
}

/// An open (subject-less) policy: any subject may subscribe, so multiple
/// users land on the same merged graph and share one compiled plan.
fn open_policy(id: &str, stream: &str, threshold: f64) -> Policy {
    StreamPolicyBuilder::new(id, stream).filter(format!("rainrate > {threshold}")).build()
}

/// Overlapping grants ride one compiled plan; recovery must rebuild the
/// same sharing topology from the journal — each distinct plan deploys
/// once, every surviving grant keeps its exact journaled URI, and fresh
/// serials never collide with any journaled one (released grants included).
#[test]
fn recovery_replays_overlapping_grants_into_shared_plans() {
    let store = fresh_store("shared");
    let schema = Schema::weather_example().shared();

    let (released_uri, wind_uri, weather_uri) = {
        let server = DurableServer::create(&store, DurableConfig::local()).unwrap();
        server.register_stream("weather", Schema::weather_example()).unwrap();
        server.register_stream("wind", Schema::weather_example()).unwrap();
        server.load_policy(open_policy("open-weather", "weather", 5.0)).unwrap();
        server.load_policy(open_policy("open-wind", "wind", 2.0)).unwrap();

        let a = server.handle_request(&Request::subscribe("u0", "weather"), None).unwrap();
        let b = server.handle_request(&Request::subscribe("u1", "wind"), None).unwrap();
        let c = server.handle_request(&Request::subscribe("u2", "weather"), None).unwrap();
        assert_eq!(c.response.plan, a.response.plan, "u2 rides u0's plan");
        assert_eq!(server.inner().plan_count(), 2);
        // u0 leaves: u2 is now the weather plan's only holder, and its
        // journaled deployment id is *older* than u1's wind deployment.
        assert!(server.release_access("u0", "weather"));
        (a.handle().uri().to_string(), b.handle().uri().to_string(), c.handle().uri().to_string())
        // ← crash with a sharer that did not deploy its own plan.
    };

    let recovered = DurableServer::recover(&store).unwrap();
    assert_eq!(recovered.live_grants().len(), 2);
    assert_eq!(recovered.inner().plan_count(), 2);
    assert_eq!(recovered.inner().live_deployments(), 2);
    let held = StreamHandle::from_uri(weather_uri.clone());
    assert!(recovered.inner().handle_is_live(&held));
    assert!(recovered.inner().handle_is_live(&StreamHandle::from_uri(wind_uri.clone())));
    assert!(!recovered.inner().handle_is_live(&StreamHandle::from_uri(released_uri.clone())));

    // The surviving sharer still receives data on its adopted handle.
    let mut subscription = recovered.subscribe(&held).unwrap();
    recovered
        .push_batch("weather", (0..4).map(|i| weather_tuple(&schema, i, 9.0)).collect())
        .unwrap();
    assert_eq!(subscription.drain().len(), 4);

    // A fresh subscriber joins the recovered plan without deploying a new
    // graph, on a serial no journaled grant — even a released one — held.
    let fresh = recovered.handle_request(&Request::subscribe("u3", "weather"), None).unwrap();
    assert_eq!(recovered.inner().plan_count(), 2);
    let fresh_uri = fresh.handle().uri().to_string();
    assert!(![released_uri, wind_uri, weather_uri].contains(&fresh_uri));
}

/// The snapshot prunes released grants, so a plan's surviving sharer can
/// carry a deployment id *older* than grants written before it. Recovery
/// must still re-mint every deployment id exactly (regression: snapshot
/// grants replay in deployment order, not grant order).
#[test]
fn snapshot_compaction_preserves_shared_plan_replay() {
    let store = fresh_store("shared-snap");
    let schema = Schema::weather_example().shared();

    let (wind_uri, weather_uri, deployments_before) = {
        let server = DurableServer::create(&store, DurableConfig::local()).unwrap();
        server.register_stream("weather", Schema::weather_example()).unwrap();
        server.register_stream("wind", Schema::weather_example()).unwrap();
        server.load_policy(open_policy("open-weather", "weather", 5.0)).unwrap();
        server.load_policy(open_policy("open-wind", "wind", 2.0)).unwrap();

        let a = server.handle_request(&Request::subscribe("u0", "weather"), None).unwrap();
        let b = server.handle_request(&Request::subscribe("u1", "wind"), None).unwrap();
        let c = server.handle_request(&Request::subscribe("u2", "weather"), None).unwrap();
        assert!(server.release_access("u0", "weather"));
        // Compact: the snapshot's grant list is now [u1@wind, u2@weather]
        // in grant order while their deployment ids are the other way round.
        server.snapshot().unwrap();
        assert!(a.response.deployment.0 < b.response.deployment.0);
        (
            b.handle().uri().to_string(),
            c.handle().uri().to_string(),
            vec![b.response.deployment.0, c.response.deployment.0],
        )
    };

    let recovered = DurableServer::recover(&store).unwrap();
    assert!(recovered.recovery_report().snapshot_loaded);
    assert_eq!(recovered.inner().plan_count(), 2);
    assert_eq!(recovered.inner().live_deployments(), 2);
    let grants = recovered.live_grants();
    assert_eq!(
        grants.iter().map(|g| g.handle.clone()).collect::<Vec<_>>(),
        vec![wind_uri, weather_uri.clone()],
        "grant order and URIs survive compaction verbatim"
    );
    assert_eq!(
        grants.iter().map(|g| g.deployment).collect::<Vec<_>>(),
        deployments_before,
        "replay re-minted the journaled deployment ids"
    );

    // Delivery still works on the sharer's adopted handle.
    let mut subscription = recovered.subscribe(&StreamHandle::from_uri(weather_uri)).unwrap();
    recovered
        .push_batch("weather", (0..3).map(|i| weather_tuple(&schema, i, 8.0)).collect())
        .unwrap();
    assert_eq!(subscription.drain().len(), 3);
}

// ---------------------------------------------------------------------------
// Injected disk faults: the WAL failpoint shim drives the failure modes a
// real disk produces, and the server's contract is the same for all of them
// — the journal goes sticky, every later mutation is refused with a typed
// error, reads keep working, and recovery replays the readable prefix.
// ---------------------------------------------------------------------------

/// The disk fills mid-append: the record is torn at the byte where space
/// ran out, the journal refuses everything afterwards, and recovery keeps
/// exactly the acknowledged prefix — the torn record never replays.
#[test]
fn disk_full_mid_append_refuses_mutations_and_recovery_keeps_the_prefix() {
    let store = fresh_store("disk-full");
    let schema = Schema::weather_example().shared();
    let handle_uri = {
        let server = DurableServer::create(&store, DurableConfig::local()).unwrap();
        server.register_stream("weather", Schema::weather_example()).unwrap();
        server.load_policy(rain_policy("p", "weather", "LTA", 5.0)).unwrap();
        let granted = server.handle_request(&Request::subscribe("LTA", "weather"), None).unwrap();

        // Room for part of one more record, then the device is full.
        server.install_wal_failpoint(FailMode::DiskFull { remaining: 24 });
        let batch: Vec<Tuple> = (0..4).map(|i| weather_tuple(&schema, i, 10.0)).collect();
        let err = server.push_batch("weather", batch).unwrap_err();
        assert!(matches!(err, ExacmlError::Durability(_)), "typed failure, got {err:?}");

        // The journal is sticky: every mutating plane refuses from now on.
        assert!(matches!(
            server.load_policy(rain_policy("q", "weather", "EMA", 9.0)),
            Err(ExacmlError::Durability(_))
        ));
        assert!(matches!(
            server.push("weather", weather_tuple(&schema, 9, 10.0)),
            Err(ExacmlError::Durability(_))
        ));
        // ...and the degradation is observable, not just an error string.
        let failure = server.journal_failure().expect("health must surface the failure");
        assert!(failure.contains("no space left"), "got {failure}");
        assert!(Backend::health(&server).is_degraded());
        // Reads are untouched: the grant is still live in memory.
        assert!(server
            .inner()
            .handle_is_live(&StreamHandle::from_uri(granted.handle().uri().to_string())));
        granted.handle().uri().to_string()
    };

    // The torn bytes really reached the file; recovery cuts them and keeps
    // every acknowledged record before the failed append.
    let recovered = DurableServer::recover(&store).unwrap();
    assert!(recovered.recovery_report().torn_tail.is_some());
    assert_eq!(recovered.policy_count(), 1);
    assert_eq!(recovered.live_grants().len(), 1);
    assert!(recovered.inner().handle_is_live(&StreamHandle::from_uri(handle_uri)));
    assert_eq!(recovered.inner().engine_stats().tuples_ingested, 0);
    // The recovered store is healthy and journals again.
    assert!(recovered.journal_failure().is_none());
    recovered.push("weather", weather_tuple(&schema, 0, 10.0)).unwrap();
}

/// A sticky I/O error (controller death, remounted-read-only filesystem):
/// nothing more reaches the disk, so the server must refuse mutations
/// without corrupting what is already readable.
#[test]
fn sticky_io_error_keeps_the_readable_prefix_uncorrupted() {
    let store = fresh_store("sticky");
    {
        let server = DurableServer::create(&store, DurableConfig::local()).unwrap();
        server.register_stream("weather", Schema::weather_example()).unwrap();
        server.load_policy(rain_policy("p", "weather", "LTA", 5.0)).unwrap();
        server.flush_journal().unwrap();

        server.install_wal_failpoint(FailMode::Sticky { message: "I/O error (injected)".into() });
        assert!(matches!(
            server.handle_request(&Request::subscribe("LTA", "weather"), None),
            Err(ExacmlError::Durability(_))
        ));
        assert!(matches!(
            server.load_policy(rain_policy("q", "weather", "EMA", 9.0)),
            Err(ExacmlError::Durability(_))
        ));
        let health = Backend::health(&server);
        assert!(health.journal_failure.is_some());
        // In-memory reads still serve: accountability does not go dark.
        assert_eq!(server.policy_count(), 1);
        assert!(!server.inner().audit_events().is_empty());
    }

    // Nothing after the failure was acknowledged, so recovery sees exactly
    // the pre-failure world: one policy, no grant from the refused request.
    let recovered = DurableServer::recover(&store).unwrap();
    assert_eq!(recovered.policy_count(), 1);
    assert!(recovered.live_grants().is_empty());
    assert!(recovered.journal_failure().is_none());
}

/// A write torn mid-record (power loss while the page cache drains): the
/// prefix of the record is on disk, recovery must detect and cut it.
#[test]
fn torn_write_mid_record_is_cut_on_recovery() {
    let store = fresh_store("torn-inject");
    {
        let server = DurableServer::create(&store, DurableConfig::local()).unwrap();
        server.register_stream("weather", Schema::weather_example()).unwrap();
        server.install_wal_failpoint(FailMode::TornWrite { keep: 17 });
        assert!(matches!(
            server.load_policy(rain_policy("p", "weather", "LTA", 5.0)),
            Err(ExacmlError::Durability(_))
        ));
    }
    let recovered = DurableServer::recover(&store).unwrap();
    assert!(recovered.recovery_report().torn_tail.is_some());
    assert_eq!(recovered.policy_count(), 0, "the torn policy record must not replay");
    // The stream registration before the torn record survived.
    assert!(recovered.inner().engine().catalog().contains("weather"));
}

// ---------------------------------------------------------------------------
// Replay equivalence: recover(journal(ops)) ≡ apply(ops) in memory
// ---------------------------------------------------------------------------

/// One state-mutating operation over a small fixed world: streams s0/s1,
/// subjects u0/u1, policy slots p0..p3.
#[derive(Debug, Clone)]
enum Op {
    LoadPolicy { slot: usize, subject: usize, stream: usize, threshold: u8 },
    UpdatePolicy { slot: usize, subject: usize, stream: usize, threshold: u8 },
    RemovePolicy { slot: usize },
    Grant { subject: usize, stream: usize, refined: bool },
    Release { subject: usize, stream: usize },
    Push { stream: usize, count: usize, rain: u8 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..4, 0usize..2, 0usize..2, 1u8..20).prop_map(
            |(slot, subject, stream, threshold)| Op::LoadPolicy {
                slot,
                subject,
                stream,
                threshold
            }
        ),
        (0usize..4, 0usize..2, 0usize..2, 1u8..20).prop_map(
            |(slot, subject, stream, threshold)| Op::UpdatePolicy {
                slot,
                subject,
                stream,
                threshold
            }
        ),
        (0usize..4).prop_map(|slot| Op::RemovePolicy { slot }),
        (0usize..2, 0usize..2, proptest::bool::ANY)
            .prop_map(|(subject, stream, refined)| Op::Grant { subject, stream, refined }),
        (0usize..2, 0usize..2).prop_map(|(subject, stream)| Op::Release { subject, stream }),
        (0usize..2, 1usize..12, 0u8..25).prop_map(|(stream, count, rain)| Op::Push {
            stream,
            count,
            rain
        }),
    ]
}

/// Apply one op through the unified backend API; returns whether it
/// succeeded (both the journaled and the shadow server must agree).
fn apply(backend: &dyn Backend, schema: &Arc<Schema>, op: &Op) -> bool {
    match op {
        Op::LoadPolicy { slot, subject, stream, threshold } => backend
            .load_policy(rain_policy(
                &format!("p{slot}"),
                &format!("s{stream}"),
                &format!("u{subject}"),
                f64::from(*threshold),
            ))
            .is_ok(),
        Op::UpdatePolicy { slot, subject, stream, threshold } => backend
            .update_policy(rain_policy(
                &format!("p{slot}"),
                &format!("s{stream}"),
                &format!("u{subject}"),
                f64::from(*threshold),
            ))
            .is_ok(),
        Op::RemovePolicy { slot } => backend.remove_policy(&format!("p{slot}")).is_ok(),
        Op::Grant { subject, stream, refined } => {
            let query = refined
                .then(|| UserQuery::for_stream(format!("s{stream}")).with_filter("rainrate > 30"));
            backend
                .handle_request(
                    &Request::subscribe(&format!("u{subject}"), &format!("s{stream}")),
                    query.as_ref(),
                )
                .is_ok()
        }
        Op::Release { subject, stream } => {
            backend.release_access(&format!("u{subject}"), &format!("s{stream}"))
        }
        Op::Push { stream, count, rain } => {
            let batch: Vec<Tuple> =
                (0..*count).map(|i| weather_tuple(schema, i as i64, f64::from(*rain))).collect();
            backend.push_batch(&format!("s{stream}"), batch).is_ok()
        }
    }
}

/// One audit event keyed without its timing-dependent detail suffix (load
/// durations differ run to run): (kind, subject, stream, policy).
type AuditKey = (String, Option<String>, Option<String>, Option<String>);

/// The comparable footprint of a backend: everything the durability layer
/// promises to reconstruct.
fn footprint(backend: &dyn Backend) -> (usize, usize, Vec<AuditKey>) {
    let audit = backend
        .audit_events()
        .into_iter()
        .map(|t| (t.event.kind.to_string(), t.event.subject, t.event.stream, t.event.policy_id))
        .collect();
    (backend.policy_count(), backend.live_deployments(), audit)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For any operation sequence: the journaled server equals an in-memory
    /// server executing the same sequence, recovery equals both (same
    /// handles, same audit trail), and this holds with compaction
    /// interleaved (snapshot_every = 3) exactly as without (0).
    #[test]
    fn recovery_is_equivalent_to_in_memory_replay(
        ops in proptest::collection::vec(arb_op(), 1..24),
        compact in proptest::bool::ANY,
    ) {
        let snapshot_every = if compact { 3 } else { 0 };
        let store = fresh_store("prop");
        let config = DurableConfig { snapshot_every, ..DurableConfig::local() };
        let shadow: Arc<dyn Backend> = Arc::new(DataServer::new(config.server_config()));
        let durable = DurableServer::create(&store, config).unwrap();
        let schema = Schema::weather_example().shared();

        for name in ["s0", "s1"] {
            StreamBackend::register_stream(&durable, name, Schema::weather_example()).unwrap();
            shadow.register_stream(name, Schema::weather_example()).unwrap();
        }
        for op in &ops {
            let on_durable = apply(&durable, &schema, op);
            let on_shadow = apply(shadow.as_ref(), &schema, op);
            prop_assert_eq!(on_durable, on_shadow, "divergence applying {:?}", op);
        }

        // The wrapper itself never changes semantics...
        prop_assert_eq!(footprint(&durable), footprint(shadow.as_ref()));
        let live_before = durable.live_grants();
        let audit_before = durable.inner().audit_events();
        let ingested = durable.inner().engine_stats().tuples_ingested;
        drop(durable);

        // ...and recovery rebuilds the same world: counts, audit (verbatim,
        // original timestamps), handle URIs, ingest, store revision.
        let recovered = DurableServer::recover(&store).unwrap();
        prop_assert_eq!(footprint(&recovered), footprint(shadow.as_ref()));
        prop_assert_eq!(recovered.live_grants(), live_before.clone());
        prop_assert_eq!(recovered.inner().audit_events(), audit_before.clone());
        if snapshot_every == 0 {
            // Without compaction every ingest record is still in the WAL, so
            // the engine's ingest counter (and window state) replays exactly.
            prop_assert_eq!(recovered.inner().engine_stats().tuples_ingested, ingested);
        } else {
            // Compaction seals ingest folded into the snapshot (documented in
            // docs/RECOVERY.md): only the WAL tail re-ingests.
            prop_assert!(recovered.inner().engine_stats().tuples_ingested <= ingested);
        }
        for grant in &live_before {
            prop_assert!(recovered.inner().handle_is_live(&StreamHandle::from_uri(grant.handle.clone())));
        }

        // Double recovery: nothing drifts.
        drop(recovered);
        let again = DurableServer::recover(&store).unwrap();
        prop_assert_eq!(footprint(&again), footprint(shadow.as_ref()));
        prop_assert_eq!(again.live_grants(), live_before);
        prop_assert_eq!(again.inner().audit_events(), audit_before);

        let _ = std::fs::remove_dir_all(&store);
    }
}
