//! Smoke test for the quickstart path, driven entirely through the facade's
//! entry layer: `BackendBuilder` → policy → PDP decision → obligation graph
//! → merge with a user query → StreamSQL deploy → derived tuples via a
//! `Session` (mirrors `examples/quickstart.rs`).

use exacml::exacml_dsms::{streamsql, AggFunc, AggSpec, Schema, WindowSpec};
use exacml::prelude::*;
use exacml::{exacml_plus, exacml_xacml};

#[test]
fn quickstart_path_via_facade() {
    let backend = BackendBuilder::local().deploy_on_partial_result(true).build();
    backend.register_stream("weather", Schema::weather_example()).expect("register stream");

    // Policy → obligations → query graph.
    let policy = StreamPolicyBuilder::new("nea-weather-for-lta", "weather")
        .subject("LTA")
        .filter("rainrate > 5")
        .visible_attributes(["samplingtime", "rainrate", "windspeed"])
        .window(
            WindowSpec::tuples(5, 2),
            vec![
                AggSpec::new("samplingtime", AggFunc::LastValue),
                AggSpec::new("rainrate", AggFunc::Avg),
                AggSpec::new("windspeed", AggFunc::Max),
            ],
        )
        .build();
    let policy_xml = exacml_xacml::xml::write_policy(&policy);
    assert!(policy_xml.contains("Obligation"), "policy XML should carry obligations");
    let policy_graph = exacml_plus::graph_from_obligations("weather", &policy.obligations)
        .expect("obligations translate to a query graph");
    assert_eq!(policy_graph.len(), 3, "filter + map + aggregate");
    backend.load_policy(policy).expect("load policy");

    // PDP decision + merge + StreamSQL deploy for the LTA's refined query.
    let user_query = UserQuery::for_stream("weather")
        .with_filter("rainrate > 50")
        .with_map(["samplingtime", "rainrate"])
        .with_aggregation(
            WindowSpec::tuples(10, 2),
            vec![
                AggSpec::new("samplingtime", AggFunc::LastValue),
                AggSpec::new("rainrate", AggFunc::Avg),
            ],
        );
    let session = Session::new(backend.clone(), "LTA");
    let granted = session.request_access("weather", Some(&user_query)).expect("access permitted");
    assert!(granted.response.streamsql.contains("SELECT"), "merged StreamSQL is generated");
    assert!(
        granted.response.timing.total >= granted.response.timing.pdp,
        "timing breakdown is consistent"
    );

    // Derived tuples flow to the subscriber.
    let mut subscription = session.subscribe("weather").expect("subscribe");
    let mut feed = WeatherFeed::paper_default(7);
    feed.pump_into(backend.as_ref(), "weather", 600).expect("push records");
    let derived = subscription.drain();
    assert!(!derived.is_empty(), "the merged graph must emit derived tuples");

    // Unauthorized subjects are denied.
    assert!(Session::new(backend.clone(), "EMA").request_access("weather", None).is_err());

    // The direct-query baseline (no access control) lives on beside the
    // session path; verify the generated StreamSQL still parses for it.
    let script = streamsql::generate(&policy_graph, &Schema::weather_example());
    assert!(streamsql::parse(&script).is_ok());

    // RAII: the session's grant dies with it.
    drop(session);
    assert_eq!(backend.live_deployments(), 0);
}
