//! Smoke test for the quickstart path, driven entirely through the `exacml`
//! facade crate: policy → PDP decision → obligation graph → merge with a user
//! query → StreamSQL deploy → derived tuples (mirrors
//! `examples/quickstart.rs`).

use exacml::exacml_dsms::{streamsql, AggFunc, AggSpec, Schema, WindowSpec};
use exacml::exacml_plus::{
    ClientInterface, DataServer, Proxy, ServerConfig, StreamPolicyBuilder, UserQuery,
};
use exacml::exacml_workload::WeatherFeed;
use exacml::{exacml_plus, exacml_xacml};
use std::sync::Arc;

#[test]
fn quickstart_path_via_facade() {
    let server = Arc::new(DataServer::new(ServerConfig {
        deploy_on_partial_result: true,
        ..ServerConfig::local()
    }));
    server.register_stream("weather", Schema::weather_example()).expect("register stream");

    // Policy → obligations → query graph.
    let policy = StreamPolicyBuilder::new("nea-weather-for-lta", "weather")
        .subject("LTA")
        .filter("rainrate > 5")
        .visible_attributes(["samplingtime", "rainrate", "windspeed"])
        .window(
            WindowSpec::tuples(5, 2),
            vec![
                AggSpec::new("samplingtime", AggFunc::LastValue),
                AggSpec::new("rainrate", AggFunc::Avg),
                AggSpec::new("windspeed", AggFunc::Max),
            ],
        )
        .build();
    let policy_xml = exacml_xacml::xml::write_policy(&policy);
    assert!(policy_xml.contains("Obligation"), "policy XML should carry obligations");
    let policy_graph = exacml_plus::graph_from_obligations("weather", &policy.obligations)
        .expect("obligations translate to a query graph");
    assert_eq!(policy_graph.len(), 3, "filter + map + aggregate");
    server.load_policy(policy).expect("load policy");

    // PDP decision + merge + StreamSQL deploy for the LTA's refined query.
    let user_query = UserQuery::for_stream("weather")
        .with_filter("rainrate > 50")
        .with_map(["samplingtime", "rainrate"])
        .with_aggregation(
            WindowSpec::tuples(10, 2),
            vec![
                AggSpec::new("samplingtime", AggFunc::LastValue),
                AggSpec::new("rainrate", AggFunc::Avg),
            ],
        );
    let client = ClientInterface::new(Arc::new(Proxy::new(Arc::clone(&server))));
    let response =
        client.request_access("LTA", "weather", Some(&user_query)).expect("access permitted");
    assert!(response.streamsql.contains("SELECT"), "merged StreamSQL is generated");
    assert!(response.timing.total >= response.timing.pdp, "timing breakdown is consistent");

    // Derived tuples flow to the subscriber.
    let receiver = server.subscribe(&response.handle).expect("subscribe");
    let mut feed = WeatherFeed::paper_default(7);
    for tuple in feed.take(600) {
        server.push("weather", tuple).expect("push record");
    }
    let derived: Vec<_> = receiver.try_iter().collect();
    assert!(!derived.is_empty(), "the merged graph must emit derived tuples");

    // Unauthorized subjects are denied.
    assert!(client.request_access("EMA", "weather", None).is_err());

    // The direct-query baseline still works alongside.
    let script = streamsql::generate(&policy_graph, &Schema::weather_example());
    let (_, timing) = client.direct_query(&script).expect("direct query deploys");
    assert!(timing.total.as_nanos() > 0);
}
