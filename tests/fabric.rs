//! Integration tests of the distributed brokering fabric: ≥3 `DataServer`
//! nodes behind the routing broker on the paper-testbed topology, driven
//! through the facade crate. Backend-agnostic semantics (grant/release,
//! policy churn, audit) are pinned by `tests/backend_conformance.rs`; this
//! suite covers what is *specific* to the fabric — routing exactness,
//! fabric-wide cache invalidation, and virtual-clock delivery.

use exacml::exacml_dsms::{Schema, Tuple, Value};
use exacml::exacml_xacml::Decision;
use exacml::prelude::*;
use std::collections::HashSet;
use std::time::Duration;

const NODES: usize = 3;
const STREAMS: usize = 12;

fn marker_tuple(schema: &std::sync::Arc<Schema>, stream_index: usize, sequence: usize) -> Tuple {
    let marker = (stream_index as i64) * 1_000_000_000 + sequence as i64;
    Tuple::builder_shared(schema)
        .set("samplingtime", Value::Timestamp(marker))
        .set("rainrate", 10.0)
        .finish_with_defaults()
}

fn testbed_fabric() -> (Fabric, Vec<String>) {
    let fabric = Fabric::new(FabricConfig::new(NODES, TopologyPreset::PaperTestbed.topology()));
    let names: Vec<String> = (0..STREAMS).map(|i| format!("stream{i}")).collect();
    for name in &names {
        fabric.register_stream(name, Schema::weather_example()).unwrap();
    }
    (fabric, names)
}

#[test]
fn stream_ownership_routing_is_exact() {
    let (fabric, names) = testbed_fabric();
    for (i, name) in names.iter().enumerate() {
        let policy = StreamPolicyBuilder::new(format!("p{i}"), name)
            .subject(format!("user{i}"))
            .filter("rainrate > 5")
            .build();
        fabric.load_policy(policy).unwrap();
    }

    // Every stream lives on exactly one node, and that node is the broker's
    // deterministic owner.
    for name in &names {
        let owner = fabric.owner_of(name);
        assert!(matches!(owner, NodeId::Server(_)));
        let hosting: Vec<NodeId> = fabric
            .nodes()
            .iter()
            .filter(|n| n.server().engine().stream_schema(name).is_ok())
            .map(|n| n.id())
            .collect();
        assert_eq!(hosting, vec![owner], "stream {name} must live exactly on its owner");
    }

    // Requests and data land on the owner; handles stay live and unique.
    let mut handles = HashSet::new();
    for (i, name) in names.iter().enumerate() {
        let response =
            fabric.handle_request(&Request::subscribe(&format!("user{i}"), name), None).unwrap();
        assert_eq!(response.node, fabric.owner_of(name), "request for {name} routed off-owner");
        assert!(fabric.handle_is_live(&response.response.handle));
        assert!(handles.insert(response.response.handle.uri().to_string()));
    }
    for node in fabric.nodes() {
        let owned = names.iter().filter(|n| fabric.owner_of(n) == node.id()).count();
        assert_eq!(node.requests_routed(), owned as u64);
        assert_eq!(node.server().live_deployments(), owned);
    }
    assert_eq!(fabric.live_deployments(), STREAMS);
}

#[test]
fn policy_update_invalidates_every_nodes_pdp_cache() {
    let (fabric, _names) = testbed_fabric();
    let policy = StreamPolicyBuilder::new("shared-policy", "stream0")
        .subject("LTA")
        .filter("rainrate > 5")
        .build();
    fabric.load_policy(policy).unwrap();

    // Warm every node's decision cache with a direct PDP evaluation.
    let request = Request::subscribe("LTA", "stream0");
    for node in fabric.nodes() {
        let decision = node.server().pdp().evaluate(&request);
        assert!(decision.is_permit());
        assert!(node.server().pdp().cached_decisions() >= 1, "cache must be warm");
    }
    let revisions: Vec<u64> =
        fabric.nodes().iter().map(|n| n.server().policy_store().revision()).collect();

    // A policy update at the broker must advance every node's revision
    // counter and produce the *new* decision on every node (cache miss →
    // re-evaluation, never a stale permit).
    let updated = StreamPolicyBuilder::new("shared-policy", "stream0")
        .subject("LTA")
        .filter("rainrate > 50")
        .build();
    fabric.update_policy(updated).unwrap();
    for (node, old_revision) in fabric.nodes().iter().zip(&revisions) {
        assert!(
            node.server().policy_store().revision() > *old_revision,
            "node {} revision did not advance",
            node.id()
        );
        let fresh = node.server().pdp().evaluate(&request);
        assert!(fresh.is_permit());
        let obligations = format!("{:?}", fresh.obligations);
        assert!(
            obligations.contains("rainrate > 50"),
            "node {} served a stale obligation set: {obligations}",
            node.id()
        );
    }

    // Removal: no node may keep serving the cached permit.
    fabric.remove_policy("shared-policy").unwrap();
    for node in fabric.nodes() {
        let gone = node.server().pdp().evaluate(&request);
        assert_eq!(
            gone.decision,
            Decision::NotApplicable,
            "node {} served a permit for a removed policy",
            node.id()
        );
    }
}

#[test]
fn policy_change_withdraws_granted_graphs_fabric_wide() {
    let (fabric, names) = testbed_fabric();
    // One policy per stream under a single policy id per stream; grant all.
    let mut granted = Vec::new();
    for (i, name) in names.iter().enumerate() {
        let policy = StreamPolicyBuilder::new(format!("p{i}"), name)
            .subject("LTA")
            .filter("rainrate > 5")
            .build();
        fabric.load_policy(policy).unwrap();
        granted.push(fabric.handle_request(&Request::subscribe("LTA", name), None).unwrap());
    }
    assert_eq!(fabric.live_deployments(), STREAMS);

    // Removing one policy withdraws exactly the graphs it spawned, wherever
    // they live; every other handle stays live.
    let withdrawn = fabric.remove_policy("p0").unwrap();
    assert_eq!(withdrawn, 1);
    assert!(!fabric.handle_is_live(&granted[0].response.handle));
    for response in &granted[1..] {
        assert!(fabric.handle_is_live(&response.response.handle));
    }
    assert_eq!(fabric.live_deployments(), STREAMS - 1);
}

#[test]
fn delivery_is_exactly_once_with_latency_ordered_timestamps() {
    let (fabric, names) = testbed_fabric();
    let schema = Schema::weather_example().shared();
    const PER_STREAM: usize = 200;

    // Grant an identity-shaped access on every stream and subscribe.
    let mut subscriptions = Vec::new();
    for (i, name) in names.iter().enumerate() {
        let policy = StreamPolicyBuilder::new(format!("p{i}"), name)
            .subject("LTA")
            .filter("rainrate > 5")
            .build();
        fabric.load_policy(policy).unwrap();
        let response = fabric.handle_request(&Request::subscribe("LTA", name), None).unwrap();
        subscriptions.push((i, fabric.subscribe(&response.response.handle).unwrap()));
    }

    for (i, name) in names.iter().enumerate() {
        let batch: Vec<Tuple> = (0..PER_STREAM).map(|k| marker_tuple(&schema, i, k)).collect();
        assert_eq!(fabric.push_batch(name, batch).unwrap(), PER_STREAM);
    }

    // Before any virtual time passes, nothing has crossed the network.
    for (_, subscription) in &mut subscriptions {
        assert!(subscription.poll().is_empty());
    }

    // Drain in steps so in-flight tuples arrive across several polls.
    let mut delivered: Vec<Vec<exacml::exacml_plus::fabric::DeliveredTuple>> =
        (0..STREAMS).map(|_| Vec::new()).collect();
    for _ in 0..50 {
        fabric.advance(Duration::from_millis(2));
        for (i, subscription) in &mut subscriptions {
            delivered[*i].extend(subscription.poll());
        }
    }

    for (i, received) in delivered.iter().enumerate() {
        // Exactly once: every marker of the stream, no duplicates.
        assert_eq!(received.len(), PER_STREAM, "stream {i} lost or duplicated tuples");
        let markers: HashSet<i64> =
            received.iter().map(|d| d.tuple.event_time().expect("marker")).collect();
        let expected: HashSet<i64> =
            (0..PER_STREAM).map(|k| (i as i64) * 1_000_000_000 + k as i64).collect();
        assert_eq!(markers, expected, "stream {i} delivered the wrong tuple set");

        // Simulated-latency-ordered: arrival timestamps are non-decreasing,
        // every latency covers at least the link's base propagation delay,
        // and FIFO delivery preserves the send order.
        for pair in received.windows(2) {
            assert!(pair[1].arrived_at_nanos >= pair[0].arrived_at_nanos);
            assert!(pair[1].tuple.event_time() > pair[0].tuple.event_time());
        }
        for d in received {
            assert!(d.arrived_at_nanos > d.sent_at_nanos);
            assert!(
                d.latency() >= Duration::from_micros(200),
                "stream {i}: latency {:?} below the LAN link floor",
                d.latency()
            );
        }
    }

    // Nothing else ever arrives (exactly-once, fabric-wide).
    fabric.advance(Duration::from_secs(5));
    for (_, subscription) in &mut subscriptions {
        assert!(subscription.poll().is_empty());
        assert_eq!(subscription.delivered(), PER_STREAM as u64);
    }
    let stats = fabric.stats();
    assert_eq!(stats.nodes, NODES);
    assert_eq!(stats.tuples_routed, (STREAMS * PER_STREAM) as u64);
}

/// Batched routing under injected faults: one `push_batches` call spanning
/// every stream ships **one frame per owner node**, rides out a broker-link
/// drop window with virtual-time retries, and stays exactly-once with
/// latency-ordered delivery read through the unified
/// `Subscription::drain_settled`.
#[test]
fn batched_routing_survives_fault_windows_exactly_once() {
    use std::sync::Arc;
    const PER_STREAM: usize = 50;
    // The broker→node0 link drops during [50ms, 56ms) of virtual time (the
    // default retry budget of 2+4+8ms outlives the window) and node1's link
    // runs an 8× latency spike; the batched fan-out lands inside both.
    let plan = FaultPlan::new()
        .inject(
            Fault::LinkDrop { a: NodeId::DataServer, b: NodeId::Server(0) },
            Duration::from_millis(50),
            Duration::from_millis(56),
        )
        .inject(
            Fault::LatencySpike { a: NodeId::DataServer, b: NodeId::Server(1), factor: 8.0 },
            Duration::from_millis(50),
            Duration::from_millis(200),
        );
    let fabric = Fabric::new(
        FabricConfig::new(NODES, TopologyPreset::PaperTestbed.topology())
            .with_fault_plan(Arc::new(plan)),
    );
    let schema = Schema::weather_example().shared();
    let names: Vec<String> = (0..STREAMS).map(|i| format!("stream{i}")).collect();
    let mut subscriptions = Vec::new();
    for (i, name) in names.iter().enumerate() {
        fabric.register_stream(name, Schema::weather_example()).unwrap();
        let policy = StreamPolicyBuilder::new(format!("p{i}"), name)
            .subject("LTA")
            .filter("rainrate > 5")
            .build();
        fabric.load_policy(policy).unwrap();
        let response = fabric.handle_request(&Request::subscribe("LTA", name), None).unwrap();
        // Subscribe through the trait: delivery is read below through the
        // unified `Subscription` enum, not the concrete fabric type.
        let subscription = StreamBackend::subscribe(&fabric, &response.response.handle).unwrap();
        subscriptions.push((i, subscription));
    }

    // Move into the fault windows, then fan out every stream in ONE call:
    // the broker groups by rendezvous-hashed owner and ships one frame per
    // node instead of one hop per tuple.
    fabric.advance(Duration::from_millis(51));
    let hops_before = fabric.stats().ingest_hops;
    let batches: Vec<StreamBatch> = names
        .iter()
        .enumerate()
        .map(|(i, name)| {
            StreamBatch::new(name, (0..PER_STREAM).map(|k| marker_tuple(&schema, i, k)).collect())
        })
        .collect();
    assert_eq!(fabric.push_batches(batches).unwrap(), STREAMS * PER_STREAM);

    let stats = fabric.stats();
    assert_eq!(stats.tuples_routed, (STREAMS * PER_STREAM) as u64);
    let hops = stats.ingest_hops - hops_before;
    assert!(
        hops <= NODES as u64,
        "one fan-out must cost at most one frame per node, not per tuple (cost {hops} hops \
         for {} tuples)",
        STREAMS * PER_STREAM
    );
    // Riding out the drop window cost virtual-time retries, never an error.
    assert!(fabric.robustness().broker_retries > 0, "the drop window must degrade to retries");

    for (i, subscription) in &mut subscriptions {
        let received = subscription.drain_settled();
        // Exactly once: every marker of the stream, no duplicates.
        assert_eq!(received.len(), PER_STREAM, "stream {i} lost or duplicated tuples");
        let markers: HashSet<i64> =
            received.iter().map(|d| d.tuple.event_time().expect("marker")).collect();
        let expected: HashSet<i64> =
            (0..PER_STREAM).map(|k| (*i as i64) * 1_000_000_000 + k as i64).collect();
        assert_eq!(markers, expected, "stream {i} delivered the wrong tuple set");
        // Latency-ordered: arrivals non-decreasing, FIFO preserves send
        // order, and every tuple paid at least the LAN propagation floor.
        for pair in received.windows(2) {
            assert!(pair[1].arrived_at_nanos >= pair[0].arrived_at_nanos);
            assert!(pair[1].tuple.event_time() > pair[0].tuple.event_time());
        }
        for d in &received {
            assert!(
                d.latency() >= Duration::from_micros(200),
                "stream {i}: latency {:?} below the LAN link floor",
                d.latency()
            );
        }
    }

    // Nothing else ever arrives (exactly-once, fabric-wide).
    fabric.advance(Duration::from_secs(1));
    for (_, subscription) in &mut subscriptions {
        assert!(subscription.drain_settled().is_empty());
    }
}

#[test]
fn fabric_release_access_edge_cases_match_single_server_semantics() {
    let (fabric, names) = testbed_fabric();
    let name = &names[0];
    let policy = StreamPolicyBuilder::new("p", name).subject("LTA").filter("rainrate > 5").build();
    fabric.load_policy(policy).unwrap();
    let response = fabric.handle_request(&Request::subscribe("LTA", name), None).unwrap();

    // Unknown pair → no-op; real release → true; double release → no-op.
    assert!(!fabric.release_access("nobody", name));
    assert!(!fabric.release_access("LTA", "unplaced-stream"));
    assert!(fabric.release_access("LTA", name));
    assert!(!fabric.release_access("LTA", name));
    assert!(!fabric.handle_is_live(&response.response.handle));
    assert!(matches!(
        fabric.subscribe(&response.response.handle),
        Err(ExacmlError::UnknownHandle(_))
    ));
}
