//! Cross-crate integration tests: the full eXACML+ life cycle from policy
//! authoring through request handling, streaming, revocation and the
//! evaluation harness.

use exacml_dsms::{streamsql, AggFunc, AggSpec, Schema, Value, WindowSpec};
use exacml_plus::{
    ClientInterface, DataServer, ExacmlError, Proxy, ServerConfig, StreamPolicyBuilder, UserQuery,
};
use exacml_workload::{WeatherFeed, WorkloadGenerator, WorkloadSpec};
use exacml_xacml::Request;
use std::sync::Arc;

fn example1_policy() -> exacml_xacml::Policy {
    StreamPolicyBuilder::new("nea-weather-for-lta", "weather")
        .subject("LTA")
        .filter("rainrate > 5")
        .visible_attributes(["samplingtime", "rainrate", "windspeed"])
        .window(
            WindowSpec::tuples(5, 2),
            vec![
                AggSpec::new("samplingtime", AggFunc::LastValue),
                AggSpec::new("rainrate", AggFunc::Avg),
                AggSpec::new("windspeed", AggFunc::Max),
            ],
        )
        .build()
}

fn stack(deploy_on_pr: bool) -> (Arc<DataServer>, ClientInterface) {
    let server = Arc::new(DataServer::new(ServerConfig {
        deploy_on_partial_result: deploy_on_pr,
        ..ServerConfig::local()
    }));
    server.register_stream("weather", Schema::weather_example()).unwrap();
    server.load_policy(example1_policy()).unwrap();
    let client = ClientInterface::new(Arc::new(Proxy::new(Arc::clone(&server))));
    (server, client)
}

#[test]
fn full_lifecycle_of_the_running_example() {
    let (server, client) = stack(true);

    // The LTA refinement of Section 3.1.
    let query = UserQuery::for_stream("weather")
        .with_filter("rainrate > 50")
        .with_map(["samplingtime", "rainrate"])
        .with_aggregation(
            WindowSpec::tuples(10, 2),
            vec![
                AggSpec::new("samplingtime", AggFunc::LastValue),
                AggSpec::new("rainrate", AggFunc::Avg),
            ],
        );
    let response = client.request_access("LTA", "weather", Some(&query)).unwrap();
    assert!(response.streamsql.contains("WHERE rainrate > 50"));
    assert!(response.streamsql.contains("SIZE 10 ADVANCE 2 TUPLES"));
    assert_eq!(response.output_schema.field_names(), vec!["lastvalsamplingtime", "avgrainrate"]);

    // Stream synthetic weather; only heavy-rain tuples reach the window.
    let rx = server.subscribe(&response.handle).unwrap();
    let mut feed = WeatherFeed::paper_default(3);
    for tuple in feed.take(1200) {
        server.push("weather", tuple).unwrap();
    }
    let derived: Vec<_> = rx.try_iter().collect();
    assert!(!derived.is_empty(), "heavy-rain bursts must eventually fill a window");
    for tuple in &derived {
        assert!(tuple.get_f64("avgrainrate").unwrap() > 50.0);
    }

    // Revoking the policy kills the stream immediately (Section 3.3).
    let withdrawn = server.remove_policy("nea-weather-for-lta").unwrap();
    assert_eq!(withdrawn, 1);
    assert!(!server.handle_is_live(&response.handle));
    assert!(matches!(
        client.request_access("LTA", "weather", Some(&query)),
        Err(ExacmlError::AccessDenied { .. })
    ));
}

#[test]
fn policy_documents_round_trip_through_the_server() {
    let server = DataServer::new(ServerConfig::local());
    server.register_stream("weather", Schema::weather_example()).unwrap();
    // The owner ships the policy as an XML document.
    let xml = exacml_xacml::xml::write_policy(&example1_policy());
    server.load_policy_xml(&xml).unwrap();
    let response = server.handle_request(&Request::subscribe("LTA", "weather"), None).unwrap();
    assert!(response.streamsql.contains("rainrate > 5"));
    // The user query can also travel as its Figure 4(a) XML document.
    server.release_access("LTA", "weather");
    let query_xml = UserQuery::for_stream("weather")
        .with_filter("rainrate > 50")
        .with_map(["samplingtime", "rainrate", "windspeed"])
        .with_aggregation(
            WindowSpec::tuples(10, 2),
            vec![
                AggSpec::new("samplingtime", AggFunc::LastValue),
                AggSpec::new("rainrate", AggFunc::Avg),
                AggSpec::new("windspeed", AggFunc::Max),
            ],
        )
        .to_xml();
    let query = UserQuery::from_xml(&query_xml).unwrap();
    let server =
        DataServer::new(ServerConfig { deploy_on_partial_result: true, ..ServerConfig::local() });
    server.register_stream("weather", Schema::weather_example()).unwrap();
    server.load_policy_xml(&xml).unwrap();
    let response =
        server.handle_request(&Request::subscribe("LTA", "weather"), Some(&query)).unwrap();
    assert!(response.streamsql.contains("rainrate > 50"));
}

#[test]
fn conflicting_queries_never_deploy_anything() {
    let (server, client) = stack(false);
    let contradictory = UserQuery::for_stream("weather")
        .with_filter("rainrate < 2")
        .with_map(["samplingtime", "rainrate", "windspeed"])
        .with_aggregation(
            WindowSpec::tuples(5, 2),
            vec![
                AggSpec::new("samplingtime", AggFunc::LastValue),
                AggSpec::new("rainrate", AggFunc::Avg),
                AggSpec::new("windspeed", AggFunc::Max),
            ],
        );
    assert!(matches!(
        client.request_access("LTA", "weather", Some(&contradictory)),
        Err(ExacmlError::ConflictDetected { .. })
    ));
    assert_eq!(server.live_deployments(), 0);
    assert_eq!(server.engine_stats().deployments_created, 0);
}

#[test]
fn multi_consumer_isolation_across_streams() {
    let server = Arc::new(DataServer::new(ServerConfig::local()));
    server.register_stream("weather", Schema::weather_example()).unwrap();
    server.register_stream("gps", Schema::gps_example()).unwrap();
    for (i, (subject, stream)) in
        [("LTA", "weather"), ("NEA", "weather"), ("UrbanLab", "gps")].iter().enumerate()
    {
        let policy = StreamPolicyBuilder::new(format!("p{i}"), *stream)
            .subject(*subject)
            .filter(if *stream == "weather" { "rainrate >= 0" } else { "speed >= 0" })
            .build();
        server.load_policy(policy).unwrap();
    }
    let client = ClientInterface::new(Arc::new(Proxy::new(Arc::clone(&server))));
    let lta = client.request_access("LTA", "weather", None).unwrap();
    let nea = client.request_access("NEA", "weather", None).unwrap();
    let lab = client.request_access("UrbanLab", "gps", None).unwrap();
    assert_ne!(lta.handle, nea.handle);
    assert_ne!(lta.handle, lab.handle);
    assert_eq!(server.live_deployments(), 3);
    // Wrong-stream requests are denied for every subject.
    assert!(client.request_access("LTA", "gps", None).is_err());
    assert!(client.request_access("UrbanLab", "weather", None).is_err());
}

#[test]
fn direct_query_scripts_from_the_workload_deploy_and_run() {
    let server = Arc::new(DataServer::new(ServerConfig::local()));
    for (name, schema) in WorkloadGenerator::streams() {
        server.register_stream(name, schema).unwrap();
    }
    let mut spec = WorkloadSpec::small();
    spec.n_policies = 20;
    spec.n_direct_queries = 20;
    let generator = WorkloadGenerator::new(spec);
    let queries = generator.generate_queries();
    let client = ClientInterface::new(Arc::new(Proxy::new(Arc::clone(&server))));
    for script in generator.direct_query_scripts(&queries) {
        let (handle, timing) = client.direct_query(&script).unwrap();
        assert!(server.handle_is_live(&handle));
        assert!(timing.total >= timing.dsms);
    }
    assert_eq!(server.live_deployments(), 20);
}

#[test]
fn workload_replay_through_the_full_stack() {
    // A miniature version of the Figure 6(a)/(b) runs, via the bench harness.
    let mut spec = WorkloadSpec::small();
    spec.n_policies = 25;
    spec.n_requests = 50;
    spec.n_direct_queries = 25;
    spec.max_rank = 10;

    let fig6a = exacml_bench::fig6a_result(&spec, 10);
    assert_eq!(fig6a.series.len(), 2);
    // Direct query is not slower than eXACML+ on average.
    assert!(fig6a.summary[1].1 >= fig6a.summary[0].1);

    let fig6b = exacml_bench::fig6b_result(&spec, 10);
    assert_eq!(fig6b.series.len(), 3);
    // Caching does not hurt.
    assert!(fig6b.summary[2].1 <= fig6b.summary[1].1);

    let fig7 = exacml_bench::fig7_result(30, 25, 1);
    assert_eq!(fig7.rows.len(), 30);
    assert!(fig7.means.1 < 0.01);
}

#[test]
fn aggregate_outputs_match_a_reference_computation() {
    // End-to-end numeric check: the derived stream's averages equal a
    // straight recomputation over the pushed values.
    let (server, client) = stack(false);
    let response = client.request_access("LTA", "weather", None).unwrap();
    let rx = server.subscribe(&response.handle).unwrap();

    let schema = Schema::weather_example();
    let rains: Vec<f64> = (0..20).map(|i| 10.0 + f64::from(i)).collect(); // all pass the filter
    for (i, rain) in rains.iter().enumerate() {
        let tuple = exacml_dsms::Tuple::builder(&schema)
            .set("samplingtime", Value::Timestamp(i as i64 * 30_000))
            .set("rainrate", *rain)
            .set("windspeed", 3.0)
            .finish_with_defaults();
        server.push("weather", tuple).unwrap();
    }
    let derived: Vec<_> = rx.try_iter().collect();
    // Window size 5, advance 2 over 20 tuples → windows ending at 5,7,...,19.
    assert_eq!(derived.len(), 8);
    for (w, tuple) in derived.iter().enumerate() {
        let start = w * 2;
        let expected: f64 = rains[start..start + 5].iter().sum::<f64>() / 5.0;
        let actual = tuple.get_f64("avgrainrate").unwrap();
        assert!((actual - expected).abs() < 1e-9, "window {w}: {actual} vs {expected}");
    }
    let _ = streamsql::parse(&response.streamsql).unwrap();
}

#[test]
fn audit_trail_records_the_access_lifecycle() {
    use exacml_plus::AuditEventKind;
    let (server, client) = stack(false);
    // grant, reuse, deny, release — each leaves a record. (The repeated
    // request goes straight to the server because the proxy cache would
    // otherwise answer it without the server ever seeing it.)
    client.request_access("LTA", "weather", None).unwrap();
    let reused = server.handle_request(&Request::subscribe("LTA", "weather"), None).unwrap();
    assert!(reused.reused);
    let _ = client.request_access("EMA", "weather", None);
    client.release("LTA", "weather");
    server.remove_policy("nea-weather-for-lta").unwrap();

    let events = server.audit_events();
    let kinds: Vec<AuditEventKind> = events.iter().map(|e| e.kind).collect();
    assert!(kinds.contains(&AuditEventKind::PolicyLoaded));
    assert!(kinds.contains(&AuditEventKind::Granted));
    assert!(kinds.contains(&AuditEventKind::Reused));
    assert!(kinds.contains(&AuditEventKind::Denied));
    assert!(kinds.contains(&AuditEventKind::AccessReleased));
    assert!(kinds.contains(&AuditEventKind::PolicyRemoved));
    // Per-subject filtering only returns the LTA's events.
    assert!(server
        .audit_events_for_subject("LTA")
        .iter()
        .all(|e| e.subject.as_deref() == Some("LTA")));
    assert!(!server.audit_events_for_subject("LTA").is_empty());
}

#[test]
fn corpus_files_and_policy_repository_integrate_with_the_server() {
    use exacml_workload::{export_corpus, import_corpus};
    use exacml_xacml::PolicyRepository;

    let mut spec = WorkloadSpec::small();
    spec.n_policies = 10;
    let generator = WorkloadGenerator::new(spec);
    let queries = generator.generate_queries();

    // Materialise the three files per query, as the paper's experiment does.
    let root = std::env::temp_dir().join(format!("exacml-e2e-corpus-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    export_corpus(&root, &queries).unwrap();
    let imported = import_corpus(&root).unwrap();
    assert_eq!(imported.len(), queries.len());

    // Store the policies in a file-backed repository and boot a server from it.
    let repo_dir = root.join("policies");
    let repo = PolicyRepository::open(&repo_dir).unwrap();
    for q in &imported {
        repo.save(&q.policy).unwrap();
    }
    let server = Arc::new(DataServer::new(ServerConfig::local()));
    for (name, schema) in WorkloadGenerator::streams() {
        server.register_stream(name, schema).unwrap();
    }
    for policy in repo.load_all().unwrap() {
        server.load_policy(policy).unwrap();
    }
    assert_eq!(server.policy_count(), queries.len());

    // Every imported request is granted by the server booted from disk.
    for q in imported.iter().take(5) {
        let response = server.handle_request(&q.request, None).unwrap();
        assert!(server.handle_is_live(&response.handle));
    }
    let _ = std::fs::remove_dir_all(&root);
}
