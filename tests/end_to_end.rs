//! Cross-crate integration tests: the full eXACML+ life cycle from policy
//! authoring through request handling, streaming, revocation and the
//! evaluation harness — written against the unified backend API, so every
//! scenario here runs identically on a single `DataServer` and on a 3-node
//! brokering `Fabric` (the backend is one builder line).

use exacml::exacml_dsms::{streamsql, AggFunc, AggSpec, Schema, Value, WindowSpec};
use exacml::exacml_plus::{ClientInterface, DataServer, Proxy, ServerConfig};
use exacml::exacml_workload::{WorkloadGenerator, WorkloadSpec};
use exacml::prelude::*;
use std::sync::Arc;

fn example1_policy() -> Policy {
    StreamPolicyBuilder::new("nea-weather-for-lta", "weather")
        .subject("LTA")
        .filter("rainrate > 5")
        .visible_attributes(["samplingtime", "rainrate", "windspeed"])
        .window(
            WindowSpec::tuples(5, 2),
            vec![
                AggSpec::new("samplingtime", AggFunc::LastValue),
                AggSpec::new("rainrate", AggFunc::Avg),
                AggSpec::new("windspeed", AggFunc::Max),
            ],
        )
        .build()
}

/// Both deployment shapes, prepared with the running example's stream and
/// policy. Every scenario below runs on each.
fn backends(deploy_on_pr: bool) -> Vec<Arc<dyn Backend>> {
    [BackendBuilder::local(), BackendBuilder::fabric(3)]
        .map(|b| b.deploy_on_partial_result(deploy_on_pr).build())
        .into_iter()
        .inspect(|backend| {
            backend.register_stream("weather", Schema::weather_example()).unwrap();
            backend.load_policy(example1_policy()).unwrap();
        })
        .collect()
}

#[test]
fn full_lifecycle_of_the_running_example_on_both_backends() {
    for backend in backends(true) {
        let kind = backend.backend_kind();

        // The LTA refinement of Section 3.1, issued through a session.
        let session = Session::new(backend.clone(), "LTA");
        let query = UserQuery::for_stream("weather")
            .with_filter("rainrate > 50")
            .with_map(["samplingtime", "rainrate"])
            .with_aggregation(
                WindowSpec::tuples(10, 2),
                vec![
                    AggSpec::new("samplingtime", AggFunc::LastValue),
                    AggSpec::new("rainrate", AggFunc::Avg),
                ],
            );
        let response = session.request_access("weather", Some(&query)).unwrap();
        assert!(response.response.streamsql.contains("WHERE rainrate > 50"), "{kind}");
        assert!(response.response.streamsql.contains("SIZE 10 ADVANCE 2 TUPLES"), "{kind}");
        assert_eq!(
            response.response.output_schema.field_names(),
            vec!["lastvalsamplingtime", "avgrainrate"],
            "{kind}"
        );

        // Stream synthetic weather; only heavy-rain tuples reach the window.
        let mut subscription = session.subscribe("weather").unwrap();
        let mut feed = WeatherFeed::paper_default(3);
        feed.pump_into(backend.as_ref(), "weather", 1200).unwrap();
        let derived = subscription.drain();
        assert!(!derived.is_empty(), "{kind}: heavy-rain bursts must eventually fill a window");
        for tuple in &derived {
            assert!(tuple.get_f64("avgrainrate").unwrap() > 50.0, "{kind}");
        }

        // Revoking the policy kills the stream immediately (Section 3.3).
        let withdrawn = backend.remove_policy("nea-weather-for-lta").unwrap();
        assert_eq!(withdrawn, 1, "{kind}");
        assert!(!backend.handle_is_live(response.handle()), "{kind}");
        assert!(
            matches!(
                session.request_access("weather", Some(&query)),
                Err(ExacmlError::AccessDenied { .. })
            ),
            "{kind}"
        );
    }
}

#[test]
fn policy_documents_round_trip_through_every_backend() {
    for backend in [BackendBuilder::local(), BackendBuilder::fabric(3)]
        .map(|b| b.deploy_on_partial_result(true).build())
    {
        let kind = backend.backend_kind();
        backend.register_stream("weather", Schema::weather_example()).unwrap();
        // The owner ships the policy as an XML document.
        let xml = exacml::exacml_xacml::xml::write_policy(&example1_policy());
        backend.load_policy_xml(&xml).unwrap();

        let session = Session::new(backend.clone(), "LTA");
        let response = session.request_access("weather", None).unwrap();
        assert!(response.response.streamsql.contains("rainrate > 5"), "{kind}");

        // The user query can also travel as its Figure 4(a) XML document.
        session.release("weather");
        let query_xml = UserQuery::for_stream("weather")
            .with_filter("rainrate > 50")
            .with_map(["samplingtime", "rainrate", "windspeed"])
            .with_aggregation(
                WindowSpec::tuples(10, 2),
                vec![
                    AggSpec::new("samplingtime", AggFunc::LastValue),
                    AggSpec::new("rainrate", AggFunc::Avg),
                    AggSpec::new("windspeed", AggFunc::Max),
                ],
            )
            .to_xml();
        let query = UserQuery::from_xml(&query_xml).unwrap();
        let response = session.request_access("weather", Some(&query)).unwrap();
        assert!(response.response.streamsql.contains("rainrate > 50"), "{kind}");
    }
}

#[test]
fn conflicting_queries_never_deploy_anything() {
    for backend in backends(false) {
        let kind = backend.backend_kind();
        let session = Session::new(backend.clone(), "LTA");
        let contradictory = UserQuery::for_stream("weather")
            .with_filter("rainrate < 2")
            .with_map(["samplingtime", "rainrate", "windspeed"])
            .with_aggregation(
                WindowSpec::tuples(5, 2),
                vec![
                    AggSpec::new("samplingtime", AggFunc::LastValue),
                    AggSpec::new("rainrate", AggFunc::Avg),
                    AggSpec::new("windspeed", AggFunc::Max),
                ],
            );
        assert!(
            matches!(
                session.request_access("weather", Some(&contradictory)),
                Err(ExacmlError::ConflictDetected { .. })
            ),
            "{kind}"
        );
        assert_eq!(backend.live_deployments(), 0, "{kind}");
        assert!(session.live_handles().is_empty(), "{kind}");
    }
}

#[test]
fn multi_consumer_isolation_across_streams() {
    for backend in [BackendBuilder::local().build(), BackendBuilder::fabric(3).build()] {
        let kind = backend.backend_kind();
        backend.register_stream("weather", Schema::weather_example()).unwrap();
        backend.register_stream("gps", Schema::gps_example()).unwrap();
        for (i, (subject, stream)) in
            [("LTA", "weather"), ("NEA", "weather"), ("UrbanLab", "gps")].iter().enumerate()
        {
            let policy = StreamPolicyBuilder::new(format!("p{i}"), *stream)
                .subject(*subject)
                .filter(if *stream == "weather" { "rainrate >= 0" } else { "speed >= 0" })
                .build();
            backend.load_policy(policy).unwrap();
        }
        let lta = Session::new(backend.clone(), "LTA");
        let nea = Session::new(backend.clone(), "NEA");
        let lab = Session::new(backend.clone(), "UrbanLab");
        let lta_grant = lta.request_access("weather", None).unwrap();
        let nea_grant = nea.request_access("weather", None).unwrap();
        let lab_grant = lab.request_access("gps", None).unwrap();
        assert_ne!(lta_grant.handle(), nea_grant.handle(), "{kind}");
        assert_ne!(lta_grant.handle(), lab_grant.handle(), "{kind}");
        // LTA's and NEA's policies compile to the same core on "weather",
        // so their grants share one plan; UrbanLab's gps grant is its own.
        assert_eq!(backend.live_plans(), 2, "{kind}");
        assert_eq!(backend.live_deployments(), 2, "{kind}");
        // Wrong-stream requests are denied for every subject.
        assert!(lta.request_access("gps", None).is_err(), "{kind}");
        assert!(lab.request_access("weather", None).is_err(), "{kind}");
    }
}

#[test]
fn direct_query_scripts_from_the_workload_deploy_and_run() {
    let server = Arc::new(DataServer::new(ServerConfig::local()));
    for (name, schema) in WorkloadGenerator::streams() {
        server.register_stream(name, schema).unwrap();
    }
    let mut spec = WorkloadSpec::small();
    spec.n_policies = 20;
    spec.n_direct_queries = 20;
    let generator = WorkloadGenerator::new(spec);
    let queries = generator.generate_queries();
    let client = ClientInterface::new(Arc::new(Proxy::new(Arc::clone(&server))));
    for script in generator.direct_query_scripts(&queries) {
        let (handle, timing) = client.direct_query(&script).unwrap();
        assert!(server.handle_is_live(&handle));
        assert!(timing.total >= timing.dsms);
    }
    assert_eq!(server.live_deployments(), 20);
}

#[test]
fn workload_replay_through_the_full_stack() {
    // A miniature version of the Figure 6(a)/(b) runs, via the bench harness.
    let mut spec = WorkloadSpec::small();
    spec.n_policies = 25;
    spec.n_requests = 50;
    spec.n_direct_queries = 25;
    spec.max_rank = 10;

    let fig6a = exacml::exacml_bench::fig6a_result(&spec, 10);
    assert_eq!(fig6a.series.len(), 2);
    // Direct query is not slower than eXACML+ on average.
    assert!(fig6a.summary[1].1 >= fig6a.summary[0].1);

    let fig6b = exacml::exacml_bench::fig6b_result(&spec, 10);
    assert_eq!(fig6b.series.len(), 3);
    // Caching does not hurt.
    assert!(fig6b.summary[2].1 <= fig6b.summary[1].1);

    let fig7 = exacml::exacml_bench::fig7_result(30, 25, 1);
    assert_eq!(fig7.rows.len(), 30);
    assert!(fig7.means.1 < 0.01);
}

#[test]
fn aggregate_outputs_match_a_reference_computation() {
    // End-to-end numeric check: the derived stream's averages equal a
    // straight recomputation over the pushed values — on both shapes.
    for backend in backends(false) {
        let kind = backend.backend_kind();
        let session = Session::new(backend.clone(), "LTA");
        let response = session.request_access("weather", None).unwrap();
        let mut subscription = session.subscribe("weather").unwrap();

        let schema = Schema::weather_example();
        let rains: Vec<f64> = (0..20).map(|i| 10.0 + f64::from(i)).collect(); // all pass
        for (i, rain) in rains.iter().enumerate() {
            let tuple = exacml::exacml_dsms::Tuple::builder(&schema)
                .set("samplingtime", Value::Timestamp(i as i64 * 30_000))
                .set("rainrate", *rain)
                .set("windspeed", 3.0)
                .finish_with_defaults();
            backend.push("weather", tuple).unwrap();
        }
        let derived = subscription.drain();
        // Window size 5, advance 2 over 20 tuples → windows ending at 5,7,…,19.
        assert_eq!(derived.len(), 8, "{kind}");
        for (w, tuple) in derived.iter().enumerate() {
            let start = w * 2;
            let expected: f64 = rains[start..start + 5].iter().sum::<f64>() / 5.0;
            let actual = tuple.get_f64("avgrainrate").unwrap();
            assert!((actual - expected).abs() < 1e-9, "{kind}: window {w}: {actual} vs {expected}");
        }
        let _ = streamsql::parse(&response.response.streamsql).unwrap();
    }
}

#[test]
fn audit_trail_records_the_access_lifecycle() {
    use exacml::exacml_plus::AuditEventKind;
    for backend in backends(false) {
        let kind = backend.backend_kind();
        let session = Session::new(backend.clone(), "LTA");
        // grant, reuse, deny, release — each leaves a node-tagged record.
        session.request_access("weather", None).unwrap();
        let reused = session.request_access("weather", None).unwrap();
        assert!(reused.response.reused, "{kind}");
        let _ = Session::new(backend.clone(), "EMA").request_access("weather", None);
        session.release("weather");
        backend.remove_policy("nea-weather-for-lta").unwrap();

        let events = backend.audit_events();
        let kinds: Vec<AuditEventKind> = events.iter().map(|t| t.event.kind).collect();
        assert!(kinds.contains(&AuditEventKind::PolicyLoaded), "{kind}");
        assert!(kinds.contains(&AuditEventKind::Granted), "{kind}");
        assert!(kinds.contains(&AuditEventKind::Reused), "{kind}");
        assert!(kinds.contains(&AuditEventKind::Denied), "{kind}");
        assert!(kinds.contains(&AuditEventKind::AccessReleased), "{kind}");
        assert!(kinds.contains(&AuditEventKind::PolicyRemoved), "{kind}");
        // Per-subject filtering only returns the LTA's events.
        let lta = backend.audit_events_for_subject("LTA");
        assert!(!lta.is_empty(), "{kind}");
        assert!(lta.iter().all(|t| t.event.subject.as_deref() == Some("LTA")), "{kind}");
    }
}

#[test]
fn corpus_files_and_policy_repository_integrate_with_the_server() {
    use exacml::exacml_workload::{export_corpus, import_corpus};
    use exacml::exacml_xacml::PolicyRepository;

    let mut spec = WorkloadSpec::small();
    spec.n_policies = 10;
    let generator = WorkloadGenerator::new(spec);
    let queries = generator.generate_queries();

    // Materialise the three files per query, as the paper's experiment does.
    let root = std::env::temp_dir().join(format!("exacml-e2e-corpus-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    export_corpus(&root, &queries).unwrap();
    let imported = import_corpus(&root).unwrap();
    assert_eq!(imported.len(), queries.len());

    // Store the policies in a file-backed repository and boot a backend from
    // it — through the trait, so a fabric could boot from the same corpus.
    let repo_dir = root.join("policies");
    let repo = PolicyRepository::open(&repo_dir).unwrap();
    for q in &imported {
        repo.save(&q.policy).unwrap();
    }
    let backend = BackendBuilder::local().build();
    for (name, schema) in WorkloadGenerator::streams() {
        backend.register_stream(name, schema).unwrap();
    }
    for policy in repo.load_all().unwrap() {
        backend.load_policy(policy).unwrap();
    }
    assert_eq!(backend.policy_count(), queries.len());

    // Every imported request is granted by the backend booted from disk.
    for q in imported.iter().take(5) {
        let response = backend.handle_request(&q.request, None).unwrap();
        assert!(backend.handle_is_live(response.handle()));
    }
    let _ = std::fs::remove_dir_all(&root);
}
