//! `Session` RAII coverage: dropping a session releases every handle it
//! holds — on a single server and on a fabric — and a released handle's
//! routing entry is pruned from the fabric's handle map
//! (`Fabric::routed_handles()` observes it).

use exacml::exacml_dsms::Schema;
use exacml::prelude::*;
use std::sync::Arc;

fn policies_and_streams(backend: &dyn Backend, streams: usize) -> Vec<String> {
    let names: Vec<String> = (0..streams).map(|i| format!("stream{i}")).collect();
    for name in &names {
        backend.register_stream(name, Schema::weather_example()).unwrap();
        backend
            .load_policy(
                StreamPolicyBuilder::new(format!("p-{name}"), name)
                    .subject("LTA")
                    .filter("rainrate > 5")
                    .build(),
            )
            .unwrap();
    }
    names
}

#[test]
fn dropping_a_session_releases_all_local_handles() {
    let backend = BackendBuilder::local().build();
    let names = policies_and_streams(backend.as_ref(), 4);
    {
        let session = Session::new(backend.clone(), "LTA");
        for name in &names {
            session.request_access(name, None).unwrap();
        }
        assert_eq!(session.live_handles().len(), 4);
        assert_eq!(backend.live_deployments(), 4);
    }
    // RAII: every deployment the session held is withdrawn.
    assert_eq!(backend.live_deployments(), 0);
    // The subject is free to request different queries immediately.
    let session = Session::new(backend, "LTA");
    let query = UserQuery::for_stream(&names[0]).with_filter("rainrate > 70");
    assert!(session.request_access(&names[0], Some(&query)).is_ok());
}

#[test]
fn dropping_a_session_releases_fabric_handles_and_prunes_routing_entries() {
    // Keep a concrete view of the fabric next to the trait-object view the
    // session uses, so the routing table is observable.
    let fabric = Arc::new(Fabric::new(FabricConfig::local(3)));
    let backend: Arc<dyn Backend> = fabric.clone();
    let names = policies_and_streams(backend.as_ref(), 6);

    {
        let session = Session::new(backend.clone(), "LTA");
        for name in &names {
            session.request_access(name, None).unwrap();
        }
        assert_eq!(session.live_handles().len(), 6);
        assert_eq!(fabric.routed_handles(), 6);
        assert_eq!(fabric.live_deployments(), 6);
        // The grants landed on more than one node (rendezvous placement).
        let busy_nodes =
            fabric.nodes().iter().filter(|n| n.server().live_deployments() > 0).count();
        assert!(busy_nodes > 1, "6 streams on 3 nodes should use more than one node");
    }
    // RAII fabric-wide: deployments withdrawn on every node *and* the
    // broker's handle → node routing entries pruned.
    assert_eq!(fabric.live_deployments(), 0);
    assert_eq!(fabric.routed_handles(), 0, "dead handles must not linger in the routing map");
}

#[test]
fn explicit_release_prunes_the_routing_entry_too() {
    let fabric = Arc::new(Fabric::new(FabricConfig::local(2)));
    let backend: Arc<dyn Backend> = fabric.clone();
    let names = policies_and_streams(backend.as_ref(), 2);

    let session = Session::new(backend, "LTA");
    let granted = session.request_access(&names[0], None).unwrap();
    session.request_access(&names[1], None).unwrap();
    assert_eq!(fabric.routed_handles(), 2);

    assert!(session.release(&names[0]));
    assert_eq!(fabric.routed_handles(), 1, "released handle's routing entry must be pruned");
    assert!(!fabric.handle_is_live(granted.handle()));
    assert!(session.handle_for(&names[0]).is_none());
    // The other grant is untouched.
    assert_eq!(session.live_handles().len(), 1);
    assert!(fabric.handle_is_live(session.handle_for(&names[1]).as_ref().unwrap()));

    // Double release through the session is a no-op, like on the backend.
    assert!(!session.release(&names[0]));
    assert_eq!(fabric.routed_handles(), 1);
}

#[test]
fn session_survives_server_side_withdrawal() {
    // A policy change withdraws a session's grant server-side; the session
    // must observe the death and its drop must stay a clean no-op.
    let backend = BackendBuilder::fabric(3).build();
    let names = policies_and_streams(backend.as_ref(), 2);
    let session = Session::new(backend.clone(), "LTA");
    session.request_access(&names[0], None).unwrap();
    session.request_access(&names[1], None).unwrap();

    backend.remove_policy(&format!("p-{}", names[0])).unwrap();
    assert_eq!(session.live_handles().len(), 1, "withdrawn grant no longer counts as live");
    drop(session);
    assert_eq!(backend.live_deployments(), 0);
}
