//! Multi-threaded stress test over the sharded engine and the data server.
//!
//! N producer threads push batches into their own streams while another
//! thread continuously grants accesses (deploying query graphs) and removes
//! the spawning policies (withdrawing the graphs, Section 3.3). The stable
//! identity deployments — deployed and subscribed before any producer starts
//! and never withdrawn — must observe **every pushed tuple exactly once**,
//! and the engine counters must reconcile with what the threads did.
//!
//! Producers and the churn thread drive the server exclusively through the
//! unified `Arc<dyn Backend>` surface (the trait layer is `Send + Sync`, so
//! it is what concurrent callers actually share); the engine-level counters
//! stay visible through the concrete `DataServer` next to it.
//!
//! The workload size is overridable through environment variables so the
//! nightly CI soak job can run the same invariants at a much larger scale:
//! `STRESS_STREAMS`, `STRESS_BATCHES_PER_STREAM`, `STRESS_BATCH_SIZE`,
//! `STRESS_CHURN_ROUNDS`. When `TELEMETRY_SNAPSHOT_OUT` names a path, the
//! suite also dumps the final backend telemetry snapshot there as JSON so
//! the nightly workflow can upload it as a build artifact.

use exacml::prelude::*;
use exacml_dsms::{QueryGraph, Schema, Tuple, Value};
use exacml_plus::{DataServer, ServerConfig};
use std::collections::HashSet;
use std::sync::Arc;

fn knob(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Soak artifact: when `TELEMETRY_SNAPSHOT_OUT` names a path, write the
/// suite's final telemetry snapshot there as JSON (see
/// `docs/OBSERVABILITY.md`); a no-op otherwise.
fn dump_telemetry_snapshot(snapshot: &TelemetrySnapshot) {
    let Ok(path) = std::env::var("TELEMETRY_SNAPSHOT_OUT") else { return };
    let json = serde_json::to_string_pretty(snapshot).expect("snapshot serializes");
    std::fs::write(&path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("telemetry snapshot written to {path}");
}

fn marker_tuple(schema: &Schema, stream_index: usize, sequence: usize) -> Tuple {
    // Encode (stream, sequence) into the timestamp so receivers can verify
    // exactly-once delivery per stream.
    let marker = (stream_index as i64) * 1_000_000_000 + sequence as i64;
    Tuple::builder(schema)
        .set("samplingtime", Value::Timestamp(marker))
        .set("rainrate", 10.0)
        .finish_with_defaults()
}

#[test]
fn producers_and_policy_churn_race_without_losing_tuples() {
    let streams = knob("STRESS_STREAMS", 4);
    let batches_per_stream = knob("STRESS_BATCHES_PER_STREAM", 40);
    let batch_size = knob("STRESS_BATCH_SIZE", 25);
    let churn_rounds = knob("STRESS_CHURN_ROUNDS", 30);

    let server = Arc::new(DataServer::new(ServerConfig::local()));
    // The unified surface the threads share; the concrete server stays
    // around for engine-level observability.
    let backend: Arc<dyn Backend> = Arc::clone(&server) as Arc<dyn Backend>;
    let schema = Schema::weather_example();
    for i in 0..streams {
        backend.register_stream(&format!("s{i}"), schema.clone()).unwrap();
    }

    // Stable observers: one identity deployment per stream, subscribed
    // before any producer starts and never withdrawn.
    let engine = Arc::clone(server.engine());
    let receivers: Vec<_> = (0..streams)
        .map(|i| {
            let d = engine.deploy(&QueryGraph::identity(format!("s{i}"))).unwrap();
            (d.id, engine.subscribe(&d.output_handle).unwrap())
        })
        .collect();

    // Producers: one thread per stream, pushing numbered batches through
    // the trait object.
    let mut threads = Vec::new();
    for i in 0..streams {
        let backend = Arc::clone(&backend);
        let schema = schema.clone();
        threads.push(std::thread::spawn(move || {
            let stream = format!("s{i}");
            for batch in 0..batches_per_stream {
                let tuples: Vec<Tuple> = (0..batch_size)
                    .map(|k| marker_tuple(&schema, i, batch * batch_size + k))
                    .collect();
                backend.push_batch(&stream, tuples).unwrap();
            }
        }));
    }

    // Churn: grant accesses (deploying policy graphs on the busy streams)
    // and remove/update the spawning policies, withdrawing the graphs while
    // producers are mid-batch.
    let churn = {
        let backend = Arc::clone(&backend);
        std::thread::spawn(move || {
            let mut deployed = 0usize;
            for round in 0..churn_rounds {
                let stream = format!("s{}", round % streams);
                let subject = format!("churn-{round}");
                let policy_id = format!("p-{round}");
                let policy = StreamPolicyBuilder::new(&policy_id, &stream)
                    .subject(&subject)
                    .filter("rainrate > 5")
                    .build();
                backend.load_policy(policy).unwrap();
                let response =
                    backend.handle_request(&Request::subscribe(&subject, &stream), None).unwrap();
                assert!(backend.handle_is_live(response.handle()));
                deployed += 1;
                if round % 3 == 0 {
                    // Modification also withdraws the spawned graphs.
                    let updated = StreamPolicyBuilder::new(&policy_id, &stream)
                        .subject(&subject)
                        .filter("rainrate > 50")
                        .build();
                    assert_eq!(backend.update_policy(updated).unwrap(), 1);
                    backend.remove_policy(&policy_id).unwrap();
                } else {
                    assert_eq!(backend.remove_policy(&policy_id).unwrap(), 1);
                }
                assert!(!backend.handle_is_live(response.handle()));
            }
            deployed
        })
    };

    for t in threads {
        t.join().unwrap();
    }
    let churn_deployed = churn.join().unwrap();

    // Every stable observer saw every tuple of its stream exactly once.
    let per_stream = batches_per_stream * batch_size;
    for (i, (id, rx)) in receivers.iter().enumerate() {
        let received: Vec<i64> =
            rx.try_iter().map(|t| t.event_time().expect("marker timestamp")).collect();
        assert_eq!(received.len(), per_stream, "stream s{i} lost or duplicated tuples");
        let unique: HashSet<i64> = received.iter().copied().collect();
        assert_eq!(unique.len(), per_stream, "stream s{i} delivered duplicates");
        let expected: HashSet<i64> =
            (0..per_stream).map(|k| (i as i64) * 1_000_000_000 + k as i64).collect();
        assert_eq!(unique, expected, "stream s{i} delivered the wrong tuple set");
        // The engine's per-deployment counter agrees with the subscriber.
        assert_eq!(engine.emitted_by(*id), Some(per_stream as u64));
    }

    // Engine counters reconcile with the work performed.
    let stats = server.engine_stats();
    let total_pushed = (streams * per_stream) as u64;
    assert_eq!(stats.tuples_ingested, total_pushed);
    // The stable deployments alone account for one emission per pushed
    // tuple; churn deployments can only add to that.
    assert!(stats.tuples_emitted >= total_pushed);
    assert_eq!(stats.deployments_created, (streams + churn_deployed) as u64);
    assert_eq!(stats.deployments_withdrawn, churn_deployed as u64);
    assert_eq!(backend.live_deployments(), streams);
    // All churn policies were removed again.
    assert_eq!(backend.policy_count(), 0);

    // The telemetry registry reconciles with the same totals under full
    // producer concurrency — the sharded counters lose nothing.
    let snapshot = backend.telemetry();
    assert_eq!(snapshot.counter(Metric::TuplesIngested), total_pushed);
    assert_eq!(snapshot.counter(Metric::BatchesIngested), (streams * batches_per_stream) as u64);
    assert_eq!(snapshot.counter(Metric::Requests), churn_deployed as u64);
    dump_telemetry_snapshot(&snapshot);
}
